"""The Forkbase client: remote reads through a local node cache.

Reads in the client/server deployment traverse the index *on the client*:
the client resolves the branch head root, then fetches the nodes along the
lookup path from the servlet.  Forkbase mitigates the round-trip cost by
caching fetched nodes locally, so subsequent reads that touch the same
nodes (upper tree levels, hot leaves) are served from the cache.  The
cache hit ratio — and therefore the read throughput — differs by index
type, which is exactly the effect Figure 21 shows.

Writes are forwarded to the servlet and executed there; they invalidate
the client's cached branch head so later reads observe the new version.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

from repro.core.interfaces import IndexSnapshot, SIRIIndex, coerce_key, coerce_value
from repro.core.version import VersionGraph
from repro.forkbase.engine import ForkbaseEngine, RemoteCostModel
from repro.hashing.digest import Digest
from repro.storage.cache import CachingNodeStore
from repro.storage.store import NodeStore


class _RemoteNodeStore(NodeStore):
    """A read-only node store view backed by engine fetch requests."""

    def __init__(self, engine: ForkbaseEngine):
        super().__init__(hash_function=engine.store.hash_function, verify_on_read=False)
        self.engine = engine

    def put_bytes(self, digest: Digest, data: bytes) -> bool:
        raise NotImplementedError("clients never write nodes directly; use ForkbaseClient.write")

    def get_bytes(self, digest: Digest) -> bytes:
        return self.engine.fetch_node(digest)

    def contains(self, digest: Digest) -> bool:
        return self.engine.store.contains(digest)

    def digests(self):
        return self.engine.store.digests()

    def __len__(self) -> int:
        return len(self.engine.store)


class ForkbaseClient:
    """A client session bound to one dataset (and branch) of the engine.

    Parameters
    ----------
    engine:
        The servlet to talk to.
    dataset:
        Name of the dataset (must already exist on the engine).
    index_factory:
        Callable building the same index class the dataset uses, over an
        arbitrary node store — the client needs its own instance wired to
        the remote (cached) store to traverse nodes locally.
    cache_capacity_bytes:
        Size of the client-side node cache.
    branch:
        The branch this client reads from and writes to.
    """

    def __init__(
        self,
        engine: ForkbaseEngine,
        dataset: str,
        index_factory,
        cache_capacity_bytes: int = 16 * 1024 * 1024,
        branch: str = VersionGraph.DEFAULT_BRANCH,
    ):
        self.engine = engine
        self.dataset = dataset
        self.branch = branch
        self._remote_store = _RemoteNodeStore(engine)
        self.cache = CachingNodeStore(self._remote_store, capacity_bytes=cache_capacity_bytes,
                                      write_through=False)
        self.index: SIRIIndex = index_factory(self.cache)
        self._cached_root: Optional[Digest] = None
        self._root_valid = False

    # -- root resolution ------------------------------------------------------------

    def _root(self, refresh: bool = False) -> Optional[Digest]:
        if refresh or not self._root_valid:
            self._cached_root = self.engine.head_root(self.dataset, self.branch)
            self._root_valid = True
        return self._cached_root

    def invalidate(self) -> None:
        """Drop the cached branch head (e.g. after another client wrote)."""
        self._root_valid = False

    # -- reads ------------------------------------------------------------------------

    def get(self, key, default: Optional[bytes] = None) -> Optional[bytes]:
        """Read one key from the branch head, fetching nodes through the cache."""
        value = self.index.lookup(self._root(), coerce_key(key))
        return default if value is None else value

    def snapshot(self) -> IndexSnapshot:
        """A snapshot handle of the branch head, readable through the cache."""
        return self.index.snapshot(self._root())

    def prove(self, key):
        """A Merkle proof for ``key`` against the branch head root."""
        return self.index.prove(self._root(), coerce_key(key))

    # -- writes ---------------------------------------------------------------------------

    def write(self, puts: Mapping, removes: Iterable = (), message: str = "") -> Optional[Digest]:
        """Apply a write batch on the server and refresh the cached head."""
        encoded_puts = {coerce_key(k): coerce_value(v) for k, v in dict(puts).items()}
        encoded_removes = [coerce_key(k) for k in removes]
        new_root = self.engine.write(
            self.dataset, encoded_puts, encoded_removes, branch=self.branch, message=message
        )
        self._cached_root = new_root
        self._root_valid = True
        return new_root

    def put(self, key, value) -> Optional[Digest]:
        return self.write({key: value})

    # -- metrics ---------------------------------------------------------------------------

    @property
    def cache_hit_ratio(self) -> float:
        """Fraction of node reads served from the client cache."""
        return self.cache.hit_ratio

    def simulated_read_seconds(self) -> float:
        """Total simulated network time charged by the engine for this session."""
        return self.engine.simulated_seconds
