"""The Forkbase-style servlet: datasets, branches, and remote-access costs.

The engine owns one content-addressed node store and, per named dataset, a
:class:`~repro.core.version.VersionGraph` of committed index versions.  A
client talks to the engine through a narrow request interface (get node,
put nodes, resolve branch head, commit root) so that the cost of the
client/server round trips can be accounted explicitly — the paper's
system-level experiments are dominated by exactly that cost for reads.

Network costs are *simulated*: each request adds its cost to an accounting
meter instead of sleeping, which keeps benchmarks fast while preserving
the relative throughput picture.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.errors import ReproError
from repro.core.interfaces import IndexSnapshot, SIRIIndex
from repro.core.version import VersionGraph
from repro.hashing.digest import Digest
from repro.storage.memory import InMemoryNodeStore
from repro.storage.store import NodeStore


class UnknownDatasetError(ReproError, KeyError):
    """A dataset name was referenced that the engine does not know."""


@dataclass
class RemoteCostModel:
    """Simulated per-request network costs (seconds)."""

    #: Fixed round-trip latency charged per client↔server request.
    request_latency: float = 60e-6
    #: Additional cost per transferred byte (models limited bandwidth).
    per_byte: float = 8e-9

    def request_cost(self, payload_bytes: int) -> float:
        return self.request_latency + payload_bytes * self.per_byte


def forkbase_remote_cost_model() -> RemoteCostModel:
    """Forkbase's lean binary protocol (the paper's faster system)."""
    return RemoteCostModel(request_latency=60e-6, per_byte=8e-9)


@dataclass
class _Dataset:
    """Engine-internal bookkeeping for one named dataset."""

    index: SIRIIndex
    versions: VersionGraph = field(default_factory=VersionGraph)


class ForkbaseEngine:
    """The server side: node storage plus dataset/branch management.

    Parameters
    ----------
    store:
        Node store shared by all datasets (defaults to an in-memory store).
    cost_model:
        Simulated network cost charged per request (None disables costs,
        e.g. for purely functional tests).
    """

    def __init__(self, store: Optional[NodeStore] = None,
                 cost_model: Optional[RemoteCostModel] = None):
        # Note: an empty store is falsy (len() == 0), so test identity, not truth.
        self.store = store if store is not None else InMemoryNodeStore()
        self.cost_model = cost_model if cost_model is not None else forkbase_remote_cost_model()
        self.simulated_seconds = 0.0
        self.requests_served = 0
        self._datasets: Dict[str, _Dataset] = {}

    # -- accounting ---------------------------------------------------------------

    def _charge(self, payload_bytes: int) -> None:
        self.requests_served += 1
        self.simulated_seconds += self.cost_model.request_cost(payload_bytes)

    def reset_meters(self) -> None:
        self.simulated_seconds = 0.0
        self.requests_served = 0

    # -- dataset management ---------------------------------------------------------

    def create_dataset(self, name: str, index_factory: Callable[[NodeStore], SIRIIndex]) -> None:
        """Create a dataset whose versions are indexed by ``index_factory(store)``."""
        if name in self._datasets:
            raise ValueError(f"dataset {name!r} already exists")
        index = index_factory(self.store)
        dataset = _Dataset(index=index)
        dataset.versions.commit(None, message="initial empty version")
        self._datasets[name] = dataset

    def _dataset(self, name: str) -> _Dataset:
        dataset = self._datasets.get(name)
        if dataset is None:
            raise UnknownDatasetError(name)
        return dataset

    def datasets(self) -> List[str]:
        return sorted(self._datasets.keys())

    def index_for(self, name: str) -> SIRIIndex:
        """The index object serving a dataset (server-side use only)."""
        return self._dataset(name).index

    # -- request interface used by clients ----------------------------------------------

    def fetch_node(self, digest: Digest) -> bytes:
        """Serve one node to a client (charged one round trip)."""
        data = self.store.get(digest)
        self._charge(len(data))
        return data

    def head_root(self, name: str, branch: str = VersionGraph.DEFAULT_BRANCH) -> Optional[Digest]:
        """The root digest of a dataset branch's latest version."""
        self._charge(64)
        return self._dataset(name).versions.head(branch).root

    def branch(self, name: str, new_branch: str,
               from_branch: str = VersionGraph.DEFAULT_BRANCH) -> None:
        """Fork a dataset branch (no data is copied — only a head pointer)."""
        self._charge(64)
        self._dataset(name).versions.branch(new_branch, from_branch)

    def branches(self, name: str) -> List[str]:
        return self._dataset(name).versions.branches()

    def write(self, name: str, puts: Mapping[bytes, bytes],
              removes: Iterable[bytes] = (),
              branch: str = VersionGraph.DEFAULT_BRANCH,
              message: str = "") -> Optional[Digest]:
        """Apply a write batch server-side and commit the new version.

        Writes execute entirely on the server (the paper notes write
        performance is unaffected by the client cache), so the client is
        charged a single request carrying the batch payload.
        """
        dataset = self._dataset(name)
        payload = sum(len(k) + len(v) for k, v in puts.items()) + sum(len(k) for k in removes)
        self._charge(payload)
        head = dataset.versions.head(branch).root
        new_root = dataset.index.write(head, dict(puts), list(removes))
        dataset.versions.commit(new_root, branch=branch, message=message)
        return new_root

    def commit_root(self, name: str, root: Optional[Digest],
                    branch: str = VersionGraph.DEFAULT_BRANCH, message: str = "") -> None:
        """Record an externally-built root as the new head of a branch."""
        self._charge(64)
        self._dataset(name).versions.commit(root, branch=branch, message=message)

    def history(self, name: str, branch: str = VersionGraph.DEFAULT_BRANCH):
        """The commit history of a dataset branch (newest first)."""
        return list(self._dataset(name).versions.log(branch))

    def snapshot(self, name: str, branch: str = VersionGraph.DEFAULT_BRANCH) -> IndexSnapshot:
        """A server-side snapshot handle of a branch head (no network model)."""
        dataset = self._dataset(name)
        return dataset.index.snapshot(dataset.versions.head(branch).root)
