"""The Forkbase-style servlet: datasets, branches, and remote-access costs.

The engine is a *thin adapter* over the repository API
(:mod:`repro.api`): each named dataset is a single-shard
:class:`~repro.api.repository.Repository` whose shard stores its nodes in
the engine's one shared content-addressed store — so different datasets
(and different branches of one dataset) deduplicate against each other
exactly as before, while branch heads, forks, merges and history all run
on the same commit DAG and journal machinery the production service uses.

A client talks to the engine through a narrow request interface (get
node, put nodes, resolve branch head, commit root) so that the cost of
the client/server round trips can be accounted explicitly — the paper's
system-level experiments are dominated by exactly that cost for reads.

Network costs are *simulated*: each request adds its cost to an
accounting meter instead of sleeping, which keeps benchmarks fast while
preserving the relative throughput picture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional

from repro.api.repository import Repository
from repro.core.errors import ReproError
from repro.service.service import VersionedKVService
from repro.core.interfaces import IndexSnapshot, SIRIIndex
from repro.core.version import VersionGraph
from repro.hashing.digest import Digest
from repro.storage.memory import InMemoryNodeStore
from repro.storage.store import NodeStore


class UnknownDatasetError(ReproError, KeyError):
    """A dataset name was referenced that the engine does not know."""


@dataclass
class RemoteCostModel:
    """Simulated per-request network costs (seconds)."""

    #: Fixed round-trip latency charged per client↔server request.
    request_latency: float = 60e-6
    #: Additional cost per transferred byte (models limited bandwidth).
    per_byte: float = 8e-9

    def request_cost(self, payload_bytes: int) -> float:
        """Total simulated seconds for one request moving ``payload_bytes``."""
        return self.request_latency + payload_bytes * self.per_byte


def forkbase_remote_cost_model() -> RemoteCostModel:
    """Forkbase's lean binary protocol (the paper's faster system)."""
    return RemoteCostModel(request_latency=60e-6, per_byte=8e-9)


@dataclass
class _Dataset:
    """Engine-internal bookkeeping for one named dataset."""

    repository: Repository
    index: SIRIIndex


class ForkbaseEngine:
    """The server side: node storage plus dataset/branch management.

    Parameters
    ----------
    store:
        Node store shared by all datasets (defaults to an in-memory store).
    cost_model:
        Simulated network cost charged per request (None disables costs,
        e.g. for purely functional tests).
    """

    #: Branch every dataset starts on (kept in step with the version graph).
    DEFAULT_BRANCH = VersionGraph.DEFAULT_BRANCH

    def __init__(self, store: Optional[NodeStore] = None,
                 cost_model: Optional[RemoteCostModel] = None):
        # Note: an empty store is falsy (len() == 0), so test identity, not truth.
        self.store = store if store is not None else InMemoryNodeStore()
        self.cost_model = cost_model if cost_model is not None else forkbase_remote_cost_model()
        self.simulated_seconds = 0.0
        self.requests_served = 0
        self._datasets: Dict[str, _Dataset] = {}

    # -- accounting ---------------------------------------------------------------

    def _charge(self, payload_bytes: int) -> None:
        self.requests_served += 1
        self.simulated_seconds += self.cost_model.request_cost(payload_bytes)

    def reset_meters(self) -> None:
        """Zero the simulated-network accounting."""
        self.simulated_seconds = 0.0
        self.requests_served = 0

    # -- dataset management ---------------------------------------------------------

    def create_dataset(self, name: str, index_factory: Callable[[NodeStore], SIRIIndex]) -> None:
        """Create a dataset whose versions are indexed by ``index_factory(store)``.

        The dataset is a one-shard repository over the engine's shared
        store; its ``master`` branch starts with an initial empty version.
        """
        if name in self._datasets:
            raise ValueError(f"dataset {name!r} already exists")
        captured: List[SIRIIndex] = []

        def capturing_factory(store: NodeStore) -> SIRIIndex:
            index = index_factory(store)
            captured.append(index)
            return index

        service = VersionedKVService(
            capturing_factory,
            num_shards=1,
            store_factory=lambda: self.store,
            cache_bytes=0,
            default_branch=self.DEFAULT_BRANCH,
        )
        # The engine owns every dataset's lifecycle (datasets live as long
        # as the engine and share one store), so the handed-out repository
        # must NOT own the service: `with engine.repository(name): ...`
        # would otherwise close the dataset — and a closeable shared store
        # with it — for every other caller.
        repository = Repository.from_service(service, owns_service=False)
        repository.default_branch.commit("initial empty version", allow_empty=True)
        self._datasets[name] = _Dataset(repository=repository, index=captured[0])

    def _dataset(self, name: str) -> _Dataset:
        dataset = self._datasets.get(name)
        if dataset is None:
            raise UnknownDatasetError(name)
        return dataset

    def datasets(self) -> List[str]:
        """All dataset names, sorted."""
        return sorted(self._datasets.keys())

    def repository(self, name: str) -> Repository:
        """The repository backing a dataset (the full branching API)."""
        return self._dataset(name).repository

    def index_for(self, name: str) -> SIRIIndex:
        """The index object serving a dataset (server-side use only)."""
        return self._dataset(name).index

    # -- request interface used by clients ----------------------------------------------

    def fetch_node(self, digest: Digest) -> bytes:
        """Serve one node to a client (charged one round trip)."""
        data = self.store.get(digest)
        self._charge(len(data))
        return data

    def _head_root(self, name: str, branch: str) -> Optional[Digest]:
        dataset = self._dataset(name)
        return dataset.repository.branch(branch).roots[0]

    def head_root(self, name: str, branch: str = DEFAULT_BRANCH) -> Optional[Digest]:
        """The root digest of a dataset branch's latest version."""
        self._charge(64)
        return self._head_root(name, branch)

    def branch(self, name: str, new_branch: str,
               from_branch: str = DEFAULT_BRANCH) -> None:
        """Fork a dataset branch (no data is copied — only a head pointer)."""
        self._charge(64)
        self._dataset(name).repository.create_branch(new_branch, from_branch=from_branch)

    def branches(self, name: str) -> List[str]:
        """All branch names of a dataset, sorted."""
        return self._dataset(name).repository.branches()

    def write(self, name: str, puts: Mapping[bytes, bytes],
              removes: Iterable[bytes] = (),
              branch: str = DEFAULT_BRANCH,
              message: str = "") -> Optional[Digest]:
        """Apply a write batch server-side and commit the new version.

        Writes execute entirely on the server (the paper notes write
        performance is unaffected by the client cache), so the client is
        charged a single request carrying the batch payload.
        """
        dataset = self._dataset(name)
        payload = sum(len(k) + len(v) for k, v in puts.items()) + sum(len(k) for k in removes)
        self._charge(payload)
        branch_handle = dataset.repository.branch(branch)
        branch_handle.put_many(dict(puts))
        for key in removes:
            branch_handle.remove(key)
        commit = branch_handle.commit(message, allow_empty=True)
        return commit.roots[0]

    def commit_root(self, name: str, root: Optional[Digest],
                    branch: str = DEFAULT_BRANCH, message: str = "") -> None:
        """Record an externally-built root as the new head of a branch."""
        self._charge(64)
        repository = self._dataset(name).repository
        repository.service.commit_roots(branch, (root,), message=message)

    def history(self, name: str, branch: str = DEFAULT_BRANCH):
        """The commit history of a dataset branch (newest first)."""
        return self._dataset(name).repository.branch(branch).history()

    def snapshot(self, name: str, branch: str = DEFAULT_BRANCH) -> IndexSnapshot:
        """A server-side snapshot handle of a branch head (no network model)."""
        dataset = self._dataset(name)
        return dataset.index.snapshot(self._head_root(name, branch))
