"""A Noms-style Prolly Tree and remote-cost model (Figure 22).

Noms' Prolly Tree and Forkbase's POS-Tree share the same idea — a Merkle
search tree whose node boundaries come from content-defined chunking — but
differ in two respects the paper measures:

1. **Internal-layer chunking.**  POS-Tree matches the boundary pattern
   directly against the child hashes stored in internal entries; the
   Prolly Tree re-computes rolling hashes over a sliding window even in
   the internal layers, paying extra hash work on every write.
   :class:`NomsProllyTree` therefore overrides the internal boundary
   predicate to run the byte-wise rolling window.
2. **Remote protocol.**  Noms' HTTP-based protocol has a noticeably higher
   per-request overhead than Forkbase's binary protocol;
   :func:`noms_remote_cost_model` captures that with a larger simulated
   request latency.

Together these reproduce the qualitative result of Figure 22: Forkbase
(POS-Tree) is faster for reads and substantially faster for writes.
"""

from __future__ import annotations

from typing import Optional

from repro.forkbase.engine import RemoteCostModel
from repro.hashing.chunker import BoundaryPattern, ContentDefinedChunker
from repro.hashing.digest import Digest
from repro.indexes.pos_tree import POSTree
from repro.storage.store import NodeStore


class NomsProllyTree(POSTree):
    """A Prolly Tree: POS-Tree layout with window-hashed internal layers.

    The node layout, lookup and write algorithms are inherited from
    :class:`POSTree`; only the internal-layer boundary decision differs —
    it rolls a byte-wise window over the serialized entry instead of using
    the child digest directly, modelling Noms' repeated hash computation.
    The default node size matches Noms' 4 KB chunks with a 67-byte window.
    """

    name = "Prolly Tree (Noms)"

    def __init__(
        self,
        store: NodeStore,
        target_node_size: int = 4096,
        estimated_entry_size: int = 256,
        window_size: int = 67,
        **kwargs,
    ):
        super().__init__(
            store,
            target_node_size=target_node_size,
            estimated_entry_size=estimated_entry_size,
            leaf_fingerprint_mode="window",
            **kwargs,
        )
        self.window_size = window_size
        # Internal layers roll the same window over the serialized entries
        # instead of reusing the child hashes.
        self._internal_chunker = ContentDefinedChunker(
            pattern=BoundaryPattern(bits=self.internal_pattern_bits),
            window_size=window_size,
            min_items=1,
            max_items=None,
            fingerprint_mode="window",
        )
        self._leaf_chunker.window_size = window_size
        #: Number of rolling-hash byte updates performed (work POS-Tree avoids).
        self.rolling_hash_bytes = 0

    def _internal_entry_is_boundary(self, split_key: bytes, digest: Digest) -> bool:
        item = self._internal_item_bytes(split_key, digest)
        roller = self._internal_chunker.rolling_hash_factory(self.window_size)
        fingerprint = roller.digest_window(item)
        self.rolling_hash_bytes += len(item)
        return self._internal_chunker.pattern.matches(fingerprint)

    def _leaf_entry_is_boundary(self, key: bytes, value: bytes) -> bool:
        item = self._leaf_item_bytes(key, value)
        roller = self._leaf_chunker.rolling_hash_factory(self.window_size)
        fingerprint = roller.digest_window(item)
        self.rolling_hash_bytes += len(item)
        return self._leaf_chunker.pattern.matches(fingerprint)


def noms_remote_cost_model() -> RemoteCostModel:
    """Noms' HTTP remote protocol: higher per-request overhead than Forkbase."""
    return RemoteCostModel(request_latency=300e-6, per_byte=12e-9)
