"""A miniature Forkbase-style versioned storage engine (Section 5.6).

Forkbase is the storage engine the paper integrates the indexes into for
its system-level experiments.  The pieces reproduced here:

* :mod:`repro.forkbase.engine` — the servlet: owns the node store and a
  branch/commit registry per dataset, applies writes, and charges a
  simulated remote-access cost per request.
* :mod:`repro.forkbase.client` — the client: caches retrieved nodes in an
  LRU cache so repeated reads of hot nodes avoid the remote round trip
  (the effect behind Figure 21's read results).
* :mod:`repro.forkbase.noms` — a Noms-style Prolly Tree (internal layers
  re-hash a sliding window instead of reusing child hashes) and the
  remote-cost configuration used for the Forkbase-vs-Noms comparison
  (Figure 22).
"""

from repro.forkbase.engine import ForkbaseEngine, RemoteCostModel
from repro.forkbase.client import ForkbaseClient
from repro.forkbase.noms import NomsProllyTree, noms_remote_cost_model

__all__ = [
    "ForkbaseEngine",
    "ForkbaseClient",
    "RemoteCostModel",
    "NomsProllyTree",
    "noms_remote_cost_model",
]
