"""A minimal blockchain ledger whose per-block state is a SIRI index.

This mirrors the storage model the paper uses for the Ethereum workload:

* each block carries a batch of transactions (key = transaction hash,
  value = RLP-encoded raw transaction);
* an index over exactly those transactions is built bottom-up when the
  block is appended, and its root digest goes into the block header;
* headers are hash-linked (each header digests its predecessor), so any
  tampering with historical data is detectable by re-walking the chain;
* a transaction lookup scans the header list (newest first) and traverses
  the index of each candidate block until the key is found — the paper
  notes this scan dominates read latency on this workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.errors import CorruptNodeError, ReproError
from repro.core.interfaces import IndexSnapshot, SIRIIndex
from repro.hashing.digest import Digest, default_hash_function


class TamperDetectedError(ReproError):
    """The header chain or a block index failed integrity verification."""


@dataclass(frozen=True)
class BlockHeader:
    """One block header: number, parent link, and the index root digest."""

    number: int
    parent_digest: Optional[Digest]
    index_root: Optional[Digest]
    transaction_count: int

    def digest(self) -> Digest:
        """The header's own digest (what the next block links to)."""
        hasher = default_hash_function()
        parts = [
            str(self.number).encode("ascii"),
            self.parent_digest.raw if self.parent_digest else b"\x00" * 32,
            self.index_root.raw if self.index_root else b"\x00" * 32,
            str(self.transaction_count).encode("ascii"),
        ]
        return hasher.hash_many(parts)


class Ledger:
    """An append-only chain of blocks, each with its own per-block index.

    Parameters
    ----------
    index_factory:
        Zero-argument callable returning a fresh :class:`SIRIIndex` for
        each block (all blocks typically share one node store so identical
        transactions deduplicate across blocks).
    """

    def __init__(self, index_factory: Callable[[], SIRIIndex]):
        self.index_factory = index_factory
        self.headers: List[BlockHeader] = []
        self._snapshots: List[IndexSnapshot] = []

    # -- writes -------------------------------------------------------------------

    def append_block(self, transactions: Mapping[bytes, bytes]) -> BlockHeader:
        """Append a block containing ``transactions``; returns its header.

        The per-block index is built from scratch in one batched,
        bottom-up load — the access pattern under which the paper finds
        POS-Tree's build order most advantageous (Figure 7b).
        """
        index = self.index_factory()
        snapshot = index.from_items(transactions)
        parent_digest = self.headers[-1].digest() if self.headers else None
        header = BlockHeader(
            number=len(self.headers),
            parent_digest=parent_digest,
            index_root=snapshot.root_digest,
            transaction_count=len(transactions),
        )
        self.headers.append(header)
        self._snapshots.append(snapshot)
        return header

    # -- reads ----------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.headers)

    def block_snapshot(self, number: int) -> IndexSnapshot:
        """The index snapshot of block ``number``."""
        return self._snapshots[number]

    def get_transaction(self, tx_hash: bytes) -> Optional[bytes]:
        """Find a transaction by hash, scanning blocks newest-first.

        Returns the raw transaction bytes, or None when no block contains
        the hash.  The scan-then-traverse shape intentionally matches the
        paper's described lookup path for this workload.
        """
        for snapshot in reversed(self._snapshots):
            value = snapshot.get(tx_hash)
            if value is not None:
                return value
        return None

    def get_transaction_with_block(self, tx_hash: bytes) -> Optional[Tuple[int, bytes]]:
        """Like :meth:`get_transaction` but also returns the block number."""
        for number in range(len(self._snapshots) - 1, -1, -1):
            value = self._snapshots[number].get(tx_hash)
            if value is not None:
                return number, value
        return None

    def prove_transaction(self, number: int, tx_hash: bytes):
        """A Merkle proof of a transaction against block ``number``'s root."""
        return self._snapshots[number].prove(tx_hash)

    # -- integrity ---------------------------------------------------------------------

    def verify_chain(self) -> bool:
        """Verify the hash links of the header chain and each block's root.

        Raises :class:`TamperDetectedError` on the first inconsistency.
        """
        previous_digest: Optional[Digest] = None
        for header, snapshot in zip(self.headers, self._snapshots):
            if header.parent_digest != previous_digest:
                raise TamperDetectedError(f"block {header.number}: broken parent link")
            if header.index_root != snapshot.root_digest:
                raise TamperDetectedError(f"block {header.number}: index root mismatch")
            previous_digest = header.digest()
        return True

    def verify_block_contents(self, number: int) -> bool:
        """Re-hash every node of one block's index (detects storage tampering).

        A corrupted node can surface either as a digest mismatch or as a
        decoding failure while walking the tree; both are reported as
        tampering.
        """
        snapshot = self._snapshots[number]
        store = snapshot.index.store
        try:
            digests = snapshot.node_digests()
            for digest in digests:
                if not store.verify(digest):
                    raise TamperDetectedError(
                        f"block {number}: node {digest.short()} failed verification"
                    )
        except (ValueError, CorruptNodeError) as exc:
            raise TamperDetectedError(f"block {number}: corrupted node encountered: {exc}") from exc
        return True

    def total_transactions(self) -> int:
        return sum(header.transaction_count for header in self.headers)
