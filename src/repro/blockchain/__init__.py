"""Blockchain-style ledger built on the SIRI indexes.

The paper's Ethereum experiment models how a blockchain actually stores
transactions (Section 5.3.1): for every block an index is built over the
transactions of that block (keyed by transaction hash), the index's root
hash is recorded in the block header, and the block headers form a global
hash-linked list.  Reads scan the block list for the block containing a
transaction and then traverse that block's index; writes append a new
block (a batch load from scratch).

:mod:`repro.blockchain.ledger` implements that model for any of the index
candidates, including tamper detection across the header chain.
"""

from repro.blockchain.ledger import BlockHeader, Ledger

__all__ = ["BlockHeader", "Ledger"]
