"""Serialization and key-encoding utilities.

* :mod:`repro.encoding.nibbles` — key-to-nibble conversion and the
  Ethereum hex-prefix compact encoding used by the Merkle Patricia Trie.
* :mod:`repro.encoding.rlp` — Recursive Length Prefix encoding, the
  serialization format used by Ethereum for transactions (and used by the
  paper's Ethereum workload).
* :mod:`repro.encoding.binary` — small binary helpers (varints,
  length-prefixed byte strings) used for canonical node serialization.
"""

from repro.encoding.nibbles import (
    bytes_to_nibbles,
    nibbles_to_bytes,
    hex_prefix_encode,
    hex_prefix_decode,
    common_prefix_length,
)
from repro.encoding.rlp import rlp_encode, rlp_decode, RLPDecodingError
from repro.encoding.binary import (
    encode_uvarint,
    decode_uvarint,
    encode_bytes,
    decode_bytes,
    encode_bytes_list,
    decode_bytes_list,
)

__all__ = [
    "bytes_to_nibbles",
    "nibbles_to_bytes",
    "hex_prefix_encode",
    "hex_prefix_decode",
    "common_prefix_length",
    "rlp_encode",
    "rlp_decode",
    "RLPDecodingError",
    "encode_uvarint",
    "decode_uvarint",
    "encode_bytes",
    "decode_bytes",
    "encode_bytes_list",
    "decode_bytes_list",
]
