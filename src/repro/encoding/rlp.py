"""Recursive Length Prefix (RLP) encoding.

RLP is Ethereum's canonical serialization for transactions, receipts and
trie nodes.  The paper's Ethereum workload stores *RLP-encoded raw
transactions* as values and notes that RLP's hex expansion roughly doubles
key lengths for MPT, which is one of the reasons MPT's storage consumption
grows so quickly on that dataset.  This module implements the full RLP
specification for byte strings and nested lists.

Encoding rules (yellow paper, appendix B):

* A single byte in ``[0x00, 0x7f]`` is its own encoding.
* A byte string of length 0–55 is encoded as ``0x80 + len`` followed by
  the string.
* A longer byte string is encoded as ``0xb7 + len(len)`` followed by the
  big-endian length and then the string.
* A list whose encoded payload is 0–55 bytes is ``0xc0 + len`` followed by
  the concatenated encodings of its items.
* A longer list uses ``0xf7 + len(len)`` followed by the big-endian
  payload length and the payload.
"""

from __future__ import annotations

from typing import List, Tuple, Union

RLPItem = Union[bytes, "RLPList"]
RLPList = List["RLPItem"]


class RLPDecodingError(ValueError):
    """Raised when a byte string is not a valid RLP encoding."""


def _encode_length(length: int, offset: int) -> bytes:
    """Encode a payload length with the given single-byte/long-form offset."""
    if length <= 55:
        return bytes([offset + length])
    length_bytes = length.to_bytes((length.bit_length() + 7) // 8, "big")
    return bytes([offset + 55 + len(length_bytes)]) + length_bytes


def rlp_encode(item: Union[bytes, bytearray, int, str, list, tuple]) -> bytes:
    """RLP-encode ``item``.

    Accepted input types:

    * ``bytes`` / ``bytearray`` — encoded as a byte string.
    * ``str`` — UTF-8 encoded, then treated as bytes.
    * ``int`` (non-negative) — big-endian minimal byte representation, as
      Ethereum encodes scalars (zero encodes as the empty string).
    * ``list`` / ``tuple`` — encoded as an RLP list of its items.
    """
    if isinstance(item, (bytes, bytearray)):
        data = bytes(item)
        if len(data) == 1 and data[0] <= 0x7F:
            return data
        return _encode_length(len(data), 0x80) + data
    if isinstance(item, str):
        return rlp_encode(item.encode("utf-8"))
    if isinstance(item, bool):
        raise TypeError("booleans are not RLP-serializable")
    if isinstance(item, int):
        if item < 0:
            raise TypeError("negative integers are not RLP-serializable")
        if item == 0:
            return rlp_encode(b"")
        data = item.to_bytes((item.bit_length() + 7) // 8, "big")
        return rlp_encode(data)
    if isinstance(item, (list, tuple)):
        payload = b"".join(rlp_encode(sub) for sub in item)
        return _encode_length(len(payload), 0xC0) + payload
    raise TypeError(f"cannot RLP-encode object of type {type(item).__name__}")


def _decode_item(data: bytes, offset: int) -> Tuple[RLPItem, int]:
    """Decode one item starting at ``offset``; return ``(item, next_offset)``."""
    if offset >= len(data):
        raise RLPDecodingError("unexpected end of input")
    prefix = data[offset]

    if prefix <= 0x7F:
        return bytes([prefix]), offset + 1

    if prefix <= 0xB7:
        length = prefix - 0x80
        start = offset + 1
        end = start + length
        if end > len(data):
            raise RLPDecodingError("string payload exceeds input length")
        payload = data[start:end]
        if length == 1 and payload[0] <= 0x7F:
            raise RLPDecodingError("non-canonical single-byte encoding")
        return payload, end

    if prefix <= 0xBF:
        length_of_length = prefix - 0xB7
        start = offset + 1
        if start + length_of_length > len(data):
            raise RLPDecodingError("string length field exceeds input length")
        length = int.from_bytes(data[start : start + length_of_length], "big")
        if length <= 55:
            raise RLPDecodingError("non-canonical long-form string length")
        payload_start = start + length_of_length
        end = payload_start + length
        if end > len(data):
            raise RLPDecodingError("string payload exceeds input length")
        return data[payload_start:end], end

    if prefix <= 0xF7:
        length = prefix - 0xC0
        start = offset + 1
        end = start + length
        if end > len(data):
            raise RLPDecodingError("list payload exceeds input length")
        return _decode_list(data, start, end), end

    length_of_length = prefix - 0xF7
    start = offset + 1
    if start + length_of_length > len(data):
        raise RLPDecodingError("list length field exceeds input length")
    length = int.from_bytes(data[start : start + length_of_length], "big")
    if length <= 55:
        raise RLPDecodingError("non-canonical long-form list length")
    payload_start = start + length_of_length
    end = payload_start + length
    if end > len(data):
        raise RLPDecodingError("list payload exceeds input length")
    return _decode_list(data, payload_start, end), end


def _decode_list(data: bytes, start: int, end: int) -> RLPList:
    """Decode the concatenated items of a list payload in ``data[start:end]``."""
    items: RLPList = []
    offset = start
    while offset < end:
        item, offset = _decode_item(data, offset)
        if offset > end:
            raise RLPDecodingError("list item overruns list payload")
        items.append(item)
    return items


def rlp_decode(data: bytes) -> RLPItem:
    """Decode an RLP byte string into nested bytes/lists.

    Raises
    ------
    RLPDecodingError
        If the input is empty, truncated, non-canonical, or has trailing
        bytes after the first item.
    """
    if not data:
        raise RLPDecodingError("cannot decode empty input")
    item, offset = _decode_item(bytes(data), 0)
    if offset != len(data):
        raise RLPDecodingError("trailing bytes after RLP item")
    return item
