"""Compact binary serialization helpers for canonical node encodings.

All index nodes must serialize to a *canonical* byte form: two logically
identical nodes must produce identical bytes so that they hash to the same
digest and deduplicate to a single stored copy.  The helpers here provide
the building blocks for those canonical encodings:

* unsigned varints (LEB128-style),
* length-prefixed byte strings,
* length-prefixed lists of byte strings.

They are deliberately minimal and dependency-free; higher-level node
serialization lives with each index implementation.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def encode_uvarint(value: int) -> bytes:
    """Encode a non-negative integer as a LEB128 varint."""
    if value < 0:
        raise ValueError("uvarint cannot encode negative values")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_uvarint(data: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode a varint from ``data`` at ``offset``; return ``(value, next_offset)``."""
    result = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(data):
            raise ValueError("truncated uvarint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise ValueError("uvarint too long")


def encode_bytes(value: bytes) -> bytes:
    """Length-prefix a byte string with a varint length."""
    return encode_uvarint(len(value)) + value


def decode_bytes(data: bytes, offset: int = 0) -> Tuple[bytes, int]:
    """Decode a length-prefixed byte string; return ``(value, next_offset)``."""
    length, pos = decode_uvarint(data, offset)
    end = pos + length
    if end > len(data):
        raise ValueError("truncated length-prefixed bytes")
    return data[pos:end], end


def encode_bytes_list(values: Sequence[bytes]) -> bytes:
    """Encode a list of byte strings as count + length-prefixed items."""
    out = bytearray(encode_uvarint(len(values)))
    for value in values:
        out.extend(encode_bytes(value))
    return bytes(out)


def decode_bytes_list(data: bytes, offset: int = 0) -> Tuple[List[bytes], int]:
    """Decode a list written by :func:`encode_bytes_list`."""
    count, pos = decode_uvarint(data, offset)
    values: List[bytes] = []
    for _ in range(count):
        value, pos = decode_bytes(data, pos)
        values.append(value)
    return values, pos


def encode_kv_pairs(pairs: Sequence[Tuple[bytes, bytes]]) -> bytes:
    """Encode a sequence of (key, value) byte pairs canonically."""
    out = bytearray(encode_uvarint(len(pairs)))
    for key, value in pairs:
        out.extend(encode_bytes(key))
        out.extend(encode_bytes(value))
    return bytes(out)


def decode_kv_pairs(data: bytes, offset: int = 0) -> Tuple[List[Tuple[bytes, bytes]], int]:
    """Decode a sequence written by :func:`encode_kv_pairs`."""
    count, pos = decode_uvarint(data, offset)
    pairs: List[Tuple[bytes, bytes]] = []
    for _ in range(count):
        key, pos = decode_bytes(data, pos)
        value, pos = decode_bytes(data, pos)
        pairs.append((key, value))
    return pairs, pos
