"""Nibble (half-byte) key encoding for the Merkle Patricia Trie.

MPT navigates keys one *nibble* (4 bits) at a time: a branch node has 16
children, one per possible nibble value.  Keys are therefore converted
from bytes into a sequence of nibbles before insertion, and compacted
paths stored inside leaf/extension nodes are serialized with the
*hex-prefix* encoding (as in the Ethereum yellow paper): the first nibble
of the encoded form carries a flag distinguishing leaf from extension
nodes and the parity of the path length.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def bytes_to_nibbles(key: bytes) -> List[int]:
    """Split a byte string into its sequence of high/low nibbles.

    >>> bytes_to_nibbles(b"\\x38")
    [3, 8]
    """
    nibbles: List[int] = []
    for byte in key:
        nibbles.append(byte >> 4)
        nibbles.append(byte & 0x0F)
    return nibbles


def nibbles_to_bytes(nibbles: Sequence[int]) -> bytes:
    """Reassemble bytes from an even-length nibble sequence.

    Raises
    ------
    ValueError
        If the nibble sequence has odd length or contains values outside
        the range 0–15.
    """
    if len(nibbles) % 2 != 0:
        raise ValueError("nibble sequence must have even length to form bytes")
    out = bytearray()
    for i in range(0, len(nibbles), 2):
        high, low = nibbles[i], nibbles[i + 1]
        if not (0 <= high <= 15 and 0 <= low <= 15):
            raise ValueError("nibble values must be in [0, 15]")
        out.append((high << 4) | low)
    return bytes(out)


def common_prefix_length(a: Sequence[int], b: Sequence[int]) -> int:
    """Length of the longest common prefix of two nibble sequences."""
    length = 0
    for x, y in zip(a, b):
        if x != y:
            break
        length += 1
    return length


# Hex-prefix flag nibbles (Ethereum yellow paper, appendix C).
_FLAG_EXTENSION_EVEN = 0x0
_FLAG_EXTENSION_ODD = 0x1
_FLAG_LEAF_EVEN = 0x2
_FLAG_LEAF_ODD = 0x3


def hex_prefix_encode(nibbles: Sequence[int], is_leaf: bool) -> bytes:
    """Compact-encode a nibble path with the hex-prefix scheme.

    The encoding prepends one flag nibble (and, for even-length paths, a
    padding zero nibble) so that the result is always a whole number of
    bytes and self-describes both the leaf/extension distinction and the
    path parity.
    """
    for nib in nibbles:
        if not 0 <= nib <= 15:
            raise ValueError("nibble values must be in [0, 15]")
    odd = len(nibbles) % 2 == 1
    if is_leaf:
        flag = _FLAG_LEAF_ODD if odd else _FLAG_LEAF_EVEN
    else:
        flag = _FLAG_EXTENSION_ODD if odd else _FLAG_EXTENSION_EVEN
    if odd:
        prefixed = [flag] + list(nibbles)
    else:
        prefixed = [flag, 0x0] + list(nibbles)
    return nibbles_to_bytes(prefixed)


def hex_prefix_decode(encoded: bytes) -> Tuple[List[int], bool]:
    """Decode a hex-prefix encoded path back into ``(nibbles, is_leaf)``."""
    if not encoded:
        raise ValueError("cannot decode an empty hex-prefix path")
    nibbles = bytes_to_nibbles(encoded)
    flag = nibbles[0]
    if flag not in (
        _FLAG_EXTENSION_EVEN,
        _FLAG_EXTENSION_ODD,
        _FLAG_LEAF_EVEN,
        _FLAG_LEAF_ODD,
    ):
        raise ValueError(f"invalid hex-prefix flag nibble: {flag}")
    is_leaf = flag in (_FLAG_LEAF_EVEN, _FLAG_LEAF_ODD)
    odd = flag in (_FLAG_EXTENSION_ODD, _FLAG_LEAF_ODD)
    if odd:
        path = nibbles[1:]
    else:
        if nibbles[1] != 0:
            raise ValueError("padding nibble of even-length hex-prefix path must be zero")
        path = nibbles[2:]
    return path, is_leaf
