"""Latency measurement and histogram utilities (Figures 10–12).

The paper reports read/write latency *distributions*: the x-axis is the
latency range and the y-axis the number of operations falling into each
range.  :class:`LatencyRecorder` collects per-operation latencies (either
measured with a real clock or accounted from simulated costs) and
:class:`LatencyHistogram` bins them into a paper-style series.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple


class LatencyRecorder:
    """Collects individual operation latencies in seconds."""

    def __init__(self):
        self.samples: List[float] = []

    def record(self, seconds: float) -> None:
        """Add one latency sample."""
        self.samples.append(seconds)

    def time(self, fn: Callable[[], object]) -> object:
        """Run ``fn`` and record its wall-clock latency; return its result."""
        start = time.perf_counter()
        result = fn()
        self.record(time.perf_counter() - start)
        return result

    def __len__(self) -> int:
        return len(self.samples)

    # -- summary statistics --------------------------------------------------

    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    def percentile(self, fraction: float) -> float:
        """The ``fraction``-quantile (e.g. 0.5 for the median, 0.99 for p99)."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        position = min(len(ordered) - 1, max(0, int(round(fraction * (len(ordered) - 1)))))
        return ordered[position]

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(len(self.samples)),
            "mean": self.mean(),
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
            "max": max(self.samples) if self.samples else 0.0,
        }

    def histogram(self, bins: int = 20, lower: Optional[float] = None,
                  upper: Optional[float] = None) -> "LatencyHistogram":
        """Bin the collected samples into a :class:`LatencyHistogram`."""
        return LatencyHistogram.from_samples(self.samples, bins=bins, lower=lower, upper=upper)


@dataclass
class LatencyHistogram:
    """A binned latency distribution: bin upper edges and per-bin counts."""

    bin_edges: List[float]
    counts: List[int]

    @classmethod
    def from_samples(cls, samples: Sequence[float], bins: int = 20,
                     lower: Optional[float] = None, upper: Optional[float] = None) -> "LatencyHistogram":
        if bins <= 0:
            raise ValueError("bins must be positive")
        if not samples:
            return cls(bin_edges=[], counts=[])
        low = min(samples) if lower is None else lower
        high = max(samples) if upper is None else upper
        if high <= low:
            high = low + 1e-9
        width = (high - low) / bins
        edges = [low + width * (i + 1) for i in range(bins)]
        counts = [0] * bins
        for sample in samples:
            position = int((sample - low) / width)
            position = min(bins - 1, max(0, position))
            counts[position] += 1
        return cls(bin_edges=edges, counts=counts)

    def series(self) -> List[Tuple[float, int]]:
        """(bin upper edge, count) pairs — the paper's figure series."""
        return list(zip(self.bin_edges, self.counts))

    def mode_bin(self) -> Tuple[float, int]:
        """The most populated bin (its upper edge and count)."""
        if not self.counts:
            return 0.0, 0
        best = max(range(len(self.counts)), key=lambda i: self.counts[i])
        return self.bin_edges[best], self.counts[best]

    def total(self) -> int:
        return sum(self.counts)
