"""Analysis utilities: theoretical bounds, latency histograms, reports.

* :mod:`repro.analysis.bounds` — the asymptotic cost model of Section 4.1
  and the deduplication-ratio predictions of Section 4.2, as evaluable
  formulas (used both for documentation and for empirical-vs-theoretical
  validation tests).
* :mod:`repro.analysis.histogram` — latency distribution collection
  (Figures 10–12) and percentile summaries.
* :mod:`repro.analysis.treestats` — lookup-path-length distributions
  (Figure 9) and structural statistics.
* :mod:`repro.analysis.report` — plain-text table/series rendering used by
  the benchmark harness to print paper-style outputs.
"""

from repro.analysis.bounds import (
    OperationCostModel,
    mbt_cost_model,
    mpt_cost_model,
    pos_tree_cost_model,
    mvmbt_cost_model,
    predicted_deduplication_ratio,
)
from repro.analysis.histogram import LatencyHistogram, LatencyRecorder
from repro.analysis.treestats import depth_distribution, tree_statistics
from repro.analysis.report import format_series, format_table

__all__ = [
    "OperationCostModel",
    "mpt_cost_model",
    "mbt_cost_model",
    "pos_tree_cost_model",
    "mvmbt_cost_model",
    "predicted_deduplication_ratio",
    "LatencyHistogram",
    "LatencyRecorder",
    "depth_distribution",
    "tree_statistics",
    "format_table",
    "format_series",
]
