"""Tree-shape statistics: lookup path lengths and structural summaries.

Figure 9 of the paper plots, for a write workload, how many tree levels
each operation had to traverse: POS-Tree and the baseline hover around
their balanced height, MPT shows several peaks (keys terminate at
different trie depths), and MBT is constant.  These helpers collect that
distribution and related structural statistics for any snapshot.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


def depth_distribution(snapshot, keys: Iterable[bytes]) -> Dict[int, int]:
    """Histogram of lookup path lengths (levels traversed) for ``keys``."""
    counter: Counter = Counter()
    for key in keys:
        counter[snapshot.lookup_depth(key)] += 1
    return dict(sorted(counter.items()))


def tree_statistics(snapshot) -> Dict[str, float]:
    """Structural summary of one snapshot: nodes, bytes, height, fan-out."""
    digests = snapshot.node_digests()
    store = snapshot.index.store
    sizes = [store.size_of(d) for d in digests]
    node_count = len(digests)
    total_bytes = sum(sizes)
    return {
        "records": float(len(snapshot)),
        "nodes": float(node_count),
        "total_bytes": float(total_bytes),
        "avg_node_bytes": total_bytes / node_count if node_count else 0.0,
        "max_node_bytes": float(max(sizes)) if sizes else 0.0,
        "height": float(snapshot.height()),
    }


def average_depth(snapshot, keys: Sequence[bytes]) -> float:
    """Mean lookup path length over ``keys``."""
    if not keys:
        return 0.0
    return sum(snapshot.lookup_depth(key) for key in keys) / len(keys)
