"""Asymptotic cost models from Section 4 of the paper.

These functions express the operation bounds of Table/Section 4.1 and the
deduplication-ratio analysis of Section 4.2 as evaluable formulas.  They
return *abstract cost units* (number of node visits / node creations /
entry comparisons), not seconds: the tests compare their growth trends
against the empirical node-access counters of the implementations, and the
documentation uses them to explain crossover points (e.g. when MBT's
``N/B`` term starts to dominate).

Notation (paper Table 1):

=========  =====================================================
``N``      total number of records
``m``      fan-out of POS-Tree and MBT (entries per node)
``B``      number of buckets in MBT (its fixed capacity)
``L``      key length in nibbles for MPT
``delta``  number of differing records between two versions
``alpha``  differing fraction of records between two versions
``r``      average record size in bytes
``c``      size of a cryptographic hash in bytes
=========  =====================================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class OperationCostModel:
    """Cost formulas (in abstract node-visit units) for one index structure."""

    name: str
    lookup: Callable[..., float]
    update: Callable[..., float]
    diff: Callable[..., float]
    merge: Callable[..., float]

    def describe(self) -> str:
        return f"{self.name} cost model (lookup/update/diff/merge)"


def _log(base: float, value: float) -> float:
    if value <= 1:
        return 1.0
    return math.log(value, base)


# ---------------------------------------------------------------------------
# MPT — Section 4.1: lookup/update O(max(L, log_m N)) ≈ O(L) in practice.
# ---------------------------------------------------------------------------

def mpt_lookup_cost(n: int, key_length_nibbles: int, fanout: int = 16) -> float:
    """MPT lookup: bounded by the compacted key path, at least log_m N."""
    return max(float(key_length_nibbles), _log(fanout, n))


def mpt_update_cost(n: int, key_length_nibbles: int, fanout: int = 16) -> float:
    """MPT update: a lookup plus O(1) node copies per visited level."""
    return 2.0 * mpt_lookup_cost(n, key_length_nibbles, fanout)


def mpt_diff_cost(delta: int, n: int, key_length_nibbles: int, fanout: int = 16) -> float:
    """MPT diff: δ lookups in the naive model (Section 4.1.3)."""
    return delta * mpt_lookup_cost(n, key_length_nibbles, fanout)


def mpt_cost_model(key_length_nibbles: int = 20, fanout: int = 16) -> OperationCostModel:
    return OperationCostModel(
        name="MPT",
        lookup=lambda n: mpt_lookup_cost(n, key_length_nibbles, fanout),
        update=lambda n: mpt_update_cost(n, key_length_nibbles, fanout),
        diff=lambda n, delta: mpt_diff_cost(delta, n, key_length_nibbles, fanout),
        merge=lambda n, delta: mpt_diff_cost(delta, n, key_length_nibbles, fanout),
    )


# ---------------------------------------------------------------------------
# MBT — lookup O(log_m B + log2(N/B)); update O(log_m B + N/B).
# ---------------------------------------------------------------------------

def mbt_lookup_cost(n: int, buckets: int, fanout: int) -> float:
    traversal = _log(fanout, buckets)
    scan = _log(2, max(1.0, n / buckets))
    return traversal + scan


def mbt_update_cost(n: int, buckets: int, fanout: int) -> float:
    traversal = _log(fanout, buckets)
    bucket_rewrite = max(1.0, n / buckets)
    return traversal + bucket_rewrite


def mbt_diff_cost(delta: int, n: int, buckets: int, fanout: int) -> float:
    return delta * mbt_lookup_cost(n, buckets, fanout)


def mbt_cost_model(buckets: int = 1024, fanout: int = 4) -> OperationCostModel:
    return OperationCostModel(
        name="MBT",
        lookup=lambda n: mbt_lookup_cost(n, buckets, fanout),
        update=lambda n: mbt_update_cost(n, buckets, fanout),
        diff=lambda n, delta: mbt_diff_cost(delta, n, buckets, fanout),
        merge=lambda n, delta: mbt_diff_cost(delta, n, buckets, fanout),
    )


# ---------------------------------------------------------------------------
# POS-Tree (and the MVMB+-Tree baseline) — balanced search trees: O(log_m N).
# ---------------------------------------------------------------------------

def pos_lookup_cost(n: int, fanout: int) -> float:
    return _log(fanout, n)


def pos_update_cost(n: int, fanout: int) -> float:
    return 2.0 * _log(fanout, n)


def pos_diff_cost(delta: int, n: int, fanout: int) -> float:
    return delta * pos_lookup_cost(n, fanout)


def pos_tree_cost_model(fanout: int = 16) -> OperationCostModel:
    return OperationCostModel(
        name="POS-Tree",
        lookup=lambda n: pos_lookup_cost(n, fanout),
        update=lambda n: pos_update_cost(n, fanout),
        diff=lambda n, delta: pos_diff_cost(delta, n, fanout),
        merge=lambda n, delta: pos_diff_cost(delta, n, fanout),
    )


def mvmbt_cost_model(fanout: int = 16) -> OperationCostModel:
    """The baseline shares the balanced-search-tree bounds of POS-Tree."""
    model = pos_tree_cost_model(fanout)
    return OperationCostModel(
        name="MVMB+-Tree",
        lookup=model.lookup,
        update=model.update,
        diff=model.diff,
        merge=model.merge,
    )


# ---------------------------------------------------------------------------
# Deduplication-ratio predictions (Section 4.2.2)
# ---------------------------------------------------------------------------

def predicted_deduplication_ratio(alpha: float, structure: str = "POS-Tree",
                                  key_length: float = 10.0,
                                  mean_key_length: float = 10.0) -> float:
    """η prediction for two consecutive versions differing by fraction α.

    For MBT and POS-Tree the paper derives η ≈ 1/2 − α/2 for a two-version
    set; for MPT the ratio additionally depends on the relation between the
    maximum key length ``L`` and the mean key length ``L̄`` — η is at least
    (resp. at most) 1/2 − α/2 when L ≥ L̄ (resp. L ≤ L̄).
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError("alpha must be within [0, 1]")
    base = 0.5 - alpha / 2.0
    if structure.upper().startswith("MPT"):
        if key_length >= mean_key_length:
            # Lower bound — the trie shares at least this much.
            return base
        return base * (key_length / mean_key_length)
    return base
