"""Plain-text table and series rendering for the benchmark harness.

Every benchmark module regenerates one of the paper's figures or tables
and prints it in a readable, diffable plain-text form: a header block
naming the experiment, then an aligned table whose rows correspond to the
paper's data series (one column per index, one row per x-axis point).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

Number = Union[int, float]


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned plain-text table."""
    string_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in string_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_row(list(headers)))
    lines.append(render_row(["-" * w for w in widths]))
    for row in string_rows:
        lines.append(render_row(row))
    return "\n".join(lines)


def format_series(x_label: str, x_values: Sequence[object],
                  series: Mapping[str, Sequence[Number]], title: str = "") -> str:
    """Render one figure's data as a table: x column plus one column per series."""
    headers = [x_label] + list(series.keys())
    rows = []
    for i, x in enumerate(x_values):
        row = [x]
        for name in series:
            values = series[name]
            row.append(values[i] if i < len(values) else "")
        rows.append(row)
    return format_table(headers, rows, title=title)


def print_experiment(title: str, body: str) -> None:
    """Print one experiment block with a visual separator (used by benches)."""
    separator = "#" * max(len(title) + 4, 40)
    print(f"\n{separator}\n# {title}\n{separator}\n{body}\n")
