"""`RemoteRepository`: a pooled, pipelining client for the wire server.

The client mirrors the local repository surface — ``get``/``put_many``/
``scan``/``diff``/``commit``/``snapshot``/branch operations/``prove`` —
over plain blocking sockets, so existing drivers (the YCSB workloads,
the benchmarks) can run against a remote server by swapping the object
they call.  Three behaviours matter beyond the method list:

* **Connection pooling.**  Up to ``pool_size`` sockets are kept open and
  checked out per call, so independent threads issue requests
  concurrently without a global connection lock.
* **Pipelining.**  :meth:`RemoteRepository.pipeline` checks out one
  connection and sends many requests before reading any response; the
  server answers each by ``request_id``, so a deep window amortises the
  round-trip latency that dominates small-op throughput.
* **Typed failure semantics.**  ``BUSY`` frames (server backpressure)
  raise :class:`~repro.core.errors.ServerBusyError` after the configured
  ``busy_retries``; well-known error codes re-raise as the same local
  exception types the in-process stack uses; connection failures retry
  on a fresh socket — but only for idempotent operations, because a
  write whose response was lost may or may not have been applied.

``prove`` answers are verified client-side before being returned
(``verify=False`` opts out), which is the paper's outsourced-database
read path: the server is untrusted, the Merkle proof is the evidence.
Verification is *anchored*: the proof's shard root must equal the root
recorded in the :class:`~repro.server.protocol.CommitInfo` of the proven
version — taken from the client's own cache of commit records it has
already observed (every ``COMMIT``/``SNAPSHOT``/branch answer is
remembered), or supplied out of band via ``trusted_commit`` for full
end-to-end trust.  A server that fabricates a root, mis-routes the key
to an empty shard, or answers "absent" with no root at all fails
verification instead of being believed.
"""

from __future__ import annotations

import queue as queue_module
import socket
import threading
import time
from collections import OrderedDict
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.diff import DiffEntry
from repro.core.errors import (
    InvalidParameterError,
    KeyNotFoundError,
    ProofVerificationError,
    ProtocolError,
    RemoteServerError,
    ServerBusyError,
    SyncHeadMovedError,
    SyncIntegrityError,
)
from repro.core.interfaces import KeyLike, ValueLike, coerce_key, coerce_value
from repro.core.version import UnknownBranchError
from repro.hashing.digest import Digest
from repro.query.feed import ChangeEvent, FeedCursor
from repro.server import protocol
from repro.server.protocol import (
    CommitInfo,
    Op,
    Request,
    Response,
    Status,
    WireBranchHead,
    WireProof,
)
from repro.service.sharding import route_key

#: Operations safe to retry on a fresh connection after a send/receive
#: failure: re-executing them cannot change server state.
_IDEMPOTENT_OPS = frozenset({
    Op.PING, Op.GET, Op.GET_MANY, Op.SCAN, Op.DIFF, Op.SNAPSHOT,
    Op.BRANCHES, Op.BRANCH_HEAD, Op.PROVE, Op.FETCH_HEADS, Op.FETCH_NODES,
    Op.SUBSCRIBE, Op.POLL_FEED,
})

#: Commit records remembered per client for anchoring proof verification.
_COMMIT_CACHE_LIMIT = 256


def _raise_for_status(response: Response) -> Response:
    """Map a non-OK response to the local exception it stands for."""
    if response.status is Status.OK:
        return response
    if response.status is Status.BUSY:
        raise ServerBusyError(response.error_message or "server busy")
    code = response.error_code
    if code == "key_not_found":
        raise KeyNotFoundError(None, response.error_message)
    if code == "unknown_branch":
        raise UnknownBranchError(response.error_message)
    if code == "invalid_parameter":
        raise InvalidParameterError(response.error_message)
    if code == "sync_integrity":
        raise SyncIntegrityError(None, response.error_message)
    if code == "sync_head_moved":
        raise SyncHeadMovedError("", response.error_message)
    raise RemoteServerError(code, response.error_message)


class _Connection:
    """One blocking socket plus frame decoding and response matching."""

    def __init__(self, host: str, port: int, timeout: float,
                 max_frame_bytes: int):
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.decoder = protocol.FrameDecoder(max_frame_bytes)
        self.max_frame_bytes = max_frame_bytes
        #: Responses received for request ids not yet asked for (pipelining).
        self.pending: Dict[int, Response] = {}

    def send_request(self, request: Request) -> None:
        """Encode and transmit one request frame."""
        body = protocol.encode_request(request)
        self.sock.sendall(protocol.encode_frame(body, self.max_frame_bytes))

    def receive(self, request_id: int) -> Response:
        """Read frames until the response for ``request_id`` arrives."""
        while True:
            response = self.pending.pop(request_id, None)
            if response is not None:
                return response
            chunk = self.sock.recv(64 * 1024)
            if not chunk:
                raise ConnectionError("server closed the connection")
            for body in self.decoder.feed(chunk):
                parsed = protocol.decode_response(body)
                self.pending[parsed.request_id] = parsed

    def close(self) -> None:
        """Close the socket, swallowing teardown races."""
        try:
            self.sock.close()
        except OSError:
            pass


class Pipeline:
    """Many in-flight requests on one pooled connection.

    Obtained from :meth:`RemoteRepository.pipeline`; every issuing method
    sends immediately and returns a :class:`PipelineHandle` whose
    :meth:`~PipelineHandle.result` blocks until that response arrives
    (responses may complete in any order).  Exiting the ``with`` block
    waits for everything outstanding and returns the connection to the
    pool; a connection failure mid-pipeline fails all unresolved handles.
    """

    def __init__(self, client: "RemoteRepository", connection: _Connection):
        self._client = client
        self._connection = connection
        self._outstanding: Dict[int, "PipelineHandle"] = {}
        self._broken = False

    def _issue(self, request: Request) -> "PipelineHandle":
        if self._broken:
            raise ConnectionError("pipeline connection already failed")
        request.request_id = self._client._next_request_id()
        handle = PipelineHandle(self, request.request_id, request.op)
        self._connection.send_request(request)
        self._outstanding[request.request_id] = handle
        return handle

    def get(self, key: KeyLike, *, version: Optional[int] = None) -> "PipelineHandle":
        """Queue a single-key read; handle resolves to the value or None."""
        return self._issue(Request(op=Op.GET, key=coerce_key(key), version=version))

    def put(self, key: KeyLike, value: ValueLike) -> "PipelineHandle":
        """Queue a single-record write; handle resolves to the ack count."""
        return self._issue(Request(
            op=Op.PUT_MANY, items=[(coerce_key(key), coerce_value(value))]))

    def put_many(self, items) -> "PipelineHandle":
        """Queue a batched write; handle resolves to the ack count."""
        pairs = items.items() if isinstance(items, Mapping) else items
        coerced = [(coerce_key(k), coerce_value(v)) for k, v in pairs]
        return self._issue(Request(op=Op.PUT_MANY, items=coerced))

    def _resolve(self, request_id: int) -> Response:
        try:
            response = self._connection.receive(request_id)
        except (ConnectionError, OSError, ProtocolError) as exc:
            self._broken = True
            for handle in self._outstanding.values():
                handle._fail(exc)
            raise
        self._outstanding.pop(request_id, None)
        return response

    def drain(self) -> None:
        """Wait for every outstanding response."""
        for handle in list(self._outstanding.values()):
            handle.wait()

    def close(self) -> None:
        """Drain and return (or discard) the pooled connection."""
        try:
            if not self._broken:
                self.drain()
        finally:
            self._client._release(self._connection, broken=self._broken)

    def __enter__(self) -> "Pipeline":
        return self

    def __exit__(self, exc_type, *rest) -> None:
        if exc_type is not None:
            self._broken = True
        self.close()


class PipelineHandle:
    """The future result of one pipelined request."""

    def __init__(self, pipeline: Pipeline, request_id: int, op: Op):
        self._pipeline = pipeline
        self._request_id = request_id
        self._op = op
        self._response: Optional[Response] = None
        self._error: Optional[BaseException] = None

    def _fail(self, exc: BaseException) -> None:
        if self._response is None and self._error is None:
            self._error = exc

    def wait(self) -> Response:
        """Block until the raw response is in; raise on transport failure."""
        if self._error is not None:
            raise self._error
        if self._response is None:
            self._response = self._pipeline._resolve(self._request_id)
        return self._response

    def result(self):
        """The operation's value (same mapping as the blocking methods)."""
        response = _raise_for_status(self.wait())
        if self._op is Op.GET:
            return response.value
        if self._op in (Op.PUT_MANY, Op.REMOVE_MANY):
            return response.ack_count
        return response


class RemoteRepository:
    """A client for :class:`~repro.server.server.RepositoryServer`.

    Parameters
    ----------
    host / port:
        The server's listen address.
    pool_size:
        Maximum pooled connections (checked out per call, so this bounds
        the client's concurrency).
    timeout:
        Per-socket-operation timeout in seconds.
    retries:
        Reconnect-and-retry attempts for *idempotent* operations after a
        connection failure.  Writes never retry: a lost response leaves
        the write's fate unknown.
    busy_retries / busy_backoff:
        How many times to re-send after a ``BUSY`` frame, sleeping
        ``busy_backoff * 2**attempt`` between tries; the default (0)
        surfaces :class:`~repro.core.errors.ServerBusyError` immediately.
    """

    def __init__(self, host: str, port: int, *, pool_size: int = 4,
                 timeout: float = 30.0, retries: int = 1,
                 busy_retries: int = 0, busy_backoff: float = 0.05,
                 max_frame_bytes: int = protocol.MAX_FRAME_BYTES):
        if pool_size <= 0:
            raise InvalidParameterError("pool_size must be positive")
        self.host = host
        self.port = port
        self.pool_size = pool_size
        self.timeout = timeout
        self.retries = retries
        self.busy_retries = busy_retries
        self.busy_backoff = busy_backoff
        self.max_frame_bytes = max_frame_bytes
        self._idle: "queue_module.LifoQueue[_Connection]" = queue_module.LifoQueue()
        self._created = 0
        self._lock = threading.Lock()
        self._request_id = 0
        self._closed = False
        #: version -> CommitInfo, filled from every commit-bearing answer
        #: this client has seen; the anchor for verified proofs.
        self._commit_cache: "OrderedDict[int, CommitInfo]" = OrderedDict()

    # -- connection pool -----------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The server address this client talks to."""
        return (self.host, self.port)

    def _next_request_id(self) -> int:
        with self._lock:
            self._request_id = (self._request_id + 1) & 0xFFFFFFFF
            return self._request_id

    def _checkout(self) -> _Connection:
        if self._closed:
            raise RuntimeError("RemoteRepository is closed")
        try:
            return self._idle.get_nowait()
        except queue_module.Empty:
            pass
        create = False
        with self._lock:
            if self._created < self.pool_size:
                self._created += 1
                create = True
        if create:
            try:
                return self._connect()
            except BaseException:
                with self._lock:
                    self._created -= 1
                raise
        # Pool exhausted: wait for a connection to come back.
        try:
            return self._idle.get(timeout=self.timeout)
        except queue_module.Empty:
            raise TimeoutError(
                f"connection pool exhausted: no connection returned within "
                f"{self.timeout}s (pool_size={self.pool_size})") from None

    def _connect(self) -> _Connection:
        return _Connection(self.host, self.port, self.timeout,
                           self.max_frame_bytes)

    def _release(self, connection: _Connection, *, broken: bool) -> None:
        if broken or self._closed:
            connection.close()
            with self._lock:
                self._created -= 1
        else:
            self._idle.put(connection)

    def close(self) -> None:
        """Close every pooled connection (idempotent)."""
        self._closed = True
        while True:
            try:
                self._idle.get_nowait().close()
            except queue_module.Empty:
                return

    def __enter__(self) -> "RemoteRepository":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request core --------------------------------------------------------

    def request(self, request: Request) -> Response:
        """Send one request and return its OK response.

        Handles the full client policy: pooled connection checkout,
        reconnect-and-retry for idempotent ops, BUSY backoff, and error
        mapping.  The blocking convenience methods all funnel through
        here.
        """
        idempotent = request.op in _IDEMPOTENT_OPS
        attempts = (self.retries + 1) if idempotent else 1
        busy_left = self.busy_retries
        last_error: Optional[BaseException] = None
        attempt = 0
        while attempt < attempts:
            request.request_id = self._next_request_id()
            connection: Optional[_Connection] = None
            try:
                connection = self._checkout()
                connection.send_request(request)
                response = connection.receive(request.request_id)
            except (ConnectionError, OSError, ProtocolError) as exc:
                if connection is not None:
                    self._release(connection, broken=True)
                last_error = exc
                attempt += 1
                continue
            self._release(connection, broken=False)
            if response.status is Status.BUSY and busy_left > 0:
                # Backpressure: give the server room, then re-send.  A
                # BUSY'd request was never admitted, so this is safe even
                # for writes.
                time.sleep(self.busy_backoff *
                           (2 ** (self.busy_retries - busy_left)))
                busy_left -= 1
                continue
            response = _raise_for_status(response)
            if response.commit is not None:
                self._remember_commit(response.commit)
            return response
        assert last_error is not None
        raise last_error

    def _remember_commit(self, commit: CommitInfo) -> None:
        """Cache a commit record as a future proof-verification anchor."""
        with self._lock:
            self._commit_cache[commit.version] = commit
            self._commit_cache.move_to_end(commit.version)
            while len(self._commit_cache) > _COMMIT_CACHE_LIMIT:
                self._commit_cache.popitem(last=False)

    # -- reads ---------------------------------------------------------------

    def ping(self) -> None:
        """Round-trip an empty frame (connectivity check)."""
        self.request(Request(op=Op.PING))

    def get(self, key: KeyLike, default: Optional[bytes] = None,
            version: Optional[int] = None) -> Optional[bytes]:
        """Read one key (``default`` when absent), latest or at a version."""
        response = self.request(Request(
            op=Op.GET, key=coerce_key(key), version=version))
        return default if response.value is None else response.value

    def get_many(self, keys: Iterable[KeyLike], *,
                 version: Optional[int] = None,
                 default: Optional[bytes] = None) -> List[Optional[bytes]]:
        """Read many keys; values come back in input-key order."""
        response = self.request(Request(
            op=Op.GET_MANY, keys=[coerce_key(k) for k in keys],
            version=version))
        values = response.values or []
        return [default if value is None else value for value in values]

    def scan(self, start: Optional[KeyLike] = None,
             stop: Optional[KeyLike] = None,
             prefix: Optional[KeyLike] = None, *, limit: int = 0,
             version: Optional[int] = None) -> List[Tuple[bytes, bytes]]:
        """Records in ascending key order (``limit=0`` means unbounded)."""
        response = self.request(Request(
            op=Op.SCAN,
            start=None if start is None else coerce_key(start),
            stop=None if stop is None else coerce_key(stop),
            prefix=None if prefix is None else coerce_key(prefix),
            limit=limit, version=version))
        return response.items or []

    def diff(self, left: Optional[int] = None,
             right: Optional[int] = None) -> List[DiffEntry]:
        """Structural diff between two versions (``None`` = latest state)."""
        response = self.request(Request(
            op=Op.DIFF, version=left, right_version=right))
        return [DiffEntry(key, left_value, right_value)
                for key, left_value, right_value in (response.diff_entries or [])]

    # -- writes --------------------------------------------------------------

    def put(self, key: KeyLike, value: ValueLike) -> None:
        """Write one record (buffered server-side until commit/flush)."""
        self.put_many([(key, value)])

    def put_many(self, items: Union[Mapping[KeyLike, ValueLike],
                                    Sequence[Tuple[KeyLike, ValueLike]]]) -> int:
        """Write many records; returns the server's ack count."""
        pairs = items.items() if isinstance(items, Mapping) else items
        coerced = [(coerce_key(k), coerce_value(v)) for k, v in pairs]
        response = self.request(Request(op=Op.PUT_MANY, items=coerced))
        return response.ack_count

    def remove(self, key: KeyLike) -> None:
        """Remove one key."""
        self.remove_many([key])

    def remove_many(self, keys: Iterable[KeyLike]) -> int:
        """Remove many keys; returns the server's ack count."""
        response = self.request(Request(
            op=Op.REMOVE_MANY, keys=[coerce_key(k) for k in keys]))
        return response.ack_count

    # -- versioning ----------------------------------------------------------

    def commit(self, message: str = "") -> CommitInfo:
        """Record a cross-shard version server-side; returns its record."""
        response = self.request(Request(op=Op.COMMIT, message=message))
        return response.commit

    def snapshot(self, version: Optional[int] = None) -> CommitInfo:
        """The commit record for ``version`` (default branch head if None)."""
        response = self.request(Request(op=Op.SNAPSHOT, version=version))
        return response.commit

    def branches(self) -> List[str]:
        """Every branch name, sorted."""
        response = self.request(Request(op=Op.BRANCHES))
        return response.branches or []

    def create_branch(self, name: str,
                      from_branch: Optional[str] = None) -> CommitInfo:
        """Fork a branch server-side; returns the fork-point commit."""
        response = self.request(Request(
            op=Op.BRANCH_CREATE, branch=name, from_branch=from_branch))
        return response.commit

    def branch_head(self, branch: str) -> CommitInfo:
        """The newest commit on ``branch``."""
        response = self.request(Request(op=Op.BRANCH_HEAD, branch=branch))
        return response.commit

    # -- replication (the wire half of repro.sync) ---------------------------

    def fetch_heads(self) -> Tuple[int, List[WireBranchHead]]:
        """The server's shard count and every branch head with its ancestry.

        One round trip opens a sync session: the returned
        :class:`~repro.server.protocol.WireBranchHead` records carry each
        branch's content digest, per-shard roots and first-parent
        ancestry-digest chain, which is everything
        :class:`repro.sync.RemoteSyncSource` needs to classify the branch
        (in sync / fast-forward / diverged) without further traffic.
        """
        response = self.request(Request(op=Op.FETCH_HEADS))
        return response.num_shards, response.heads or []

    def missing_digests(self, shard_id: int,
                        digests: Sequence[bytes]) -> List[bytes]:
        """The subset of ``digests`` the server's shard does not hold."""
        missing: List[bytes] = []
        for batch in self._digest_batches(digests):
            response = self.request(Request(
                op=Op.FETCH_NODES, shard_id=shard_id, missing_only=True,
                digests=list(batch)))
            missing.extend(response.digests or [])
        return missing

    def fetch_nodes(self, shard_id: int,
                    digests: Sequence[bytes]) -> List[Tuple[bytes, bytes]]:
        """Canonical ``(digest, node_bytes)`` pairs from the server's shard.

        Requests are chunked so each answer fits under the frame limit; a
        batch whose answer still overflows is bisected down to single
        nodes, so one oversized node surfaces the server's error instead
        of silently dropping its siblings.
        """
        pairs: List[Tuple[bytes, bytes]] = []
        for batch in self._digest_batches(digests):
            pairs.extend(self._fetch_batch(shard_id, list(batch)))
        return pairs

    def _fetch_batch(self, shard_id: int,
                     digests: List[bytes]) -> List[Tuple[bytes, bytes]]:
        try:
            response = self.request(Request(
                op=Op.FETCH_NODES, shard_id=shard_id, digests=digests))
        except RemoteServerError as exc:
            if exc.code != "response_too_large" or len(digests) <= 1:
                raise
            middle = len(digests) // 2
            return (self._fetch_batch(shard_id, digests[:middle])
                    + self._fetch_batch(shard_id, digests[middle:]))
        return response.items or []

    def push_nodes(self, shard_id: int,
                   items: Sequence[Tuple[bytes, bytes]]) -> int:
        """Ship ``(digest, node_bytes)`` pairs into the server's shard.

        Batches are split under the frame limit by actual payload size.
        The server re-hashes every node before storing anything
        (:class:`~repro.core.errors.SyncIntegrityError` on mismatch) and
        flushes each landed batch, so every call that returns is a
        durable resume checkpoint.  Returns how many nodes were new to
        the server.
        """
        new_total = 0
        budget = max(self.max_frame_bytes - 1024, 4096)
        batch: List[Tuple[bytes, bytes]] = []
        batch_bytes = 0
        for digest, data in items:
            item_bytes = 8 + len(digest) + len(data)
            if batch and batch_bytes + item_bytes > budget:
                new_total += self._push_batch(shard_id, batch)
                batch, batch_bytes = [], 0
            batch.append((digest, data))
            batch_bytes += item_bytes
        if batch:
            new_total += self._push_batch(shard_id, batch)
        return new_total

    def _push_batch(self, shard_id: int,
                    batch: List[Tuple[bytes, bytes]]) -> int:
        response = self.request(Request(
            op=Op.PUSH_NODES, shard_id=shard_id, items=batch))
        return response.ack_count

    def publish_head(self, branch: str, roots: Sequence[Optional[bytes]],
                     expected: Optional[bytes], message: str = "") -> CommitInfo:
        """Compare-and-set ``branch``'s head to already-transferred roots.

        ``expected`` is the branch content digest observed at
        :meth:`fetch_heads` time (``None`` = the branch must not exist);
        a concurrent writer advancing the branch in between raises
        :class:`~repro.core.errors.SyncHeadMovedError` and the caller
        re-syncs.  The server refuses roots whose nodes were never landed.
        """
        response = self.request(Request(
            op=Op.PUSH_NODES, publish=True, branch=branch,
            roots=list(roots), expected=expected, message=message))
        return response.commit

    def _digest_batches(self, digests: Sequence[bytes],
                        batch_size: int = 256) -> Iterable[Sequence[bytes]]:
        for start in range(0, len(digests), batch_size):
            yield digests[start:start + batch_size]

    # -- verified reads ------------------------------------------------------

    def prove(self, key: KeyLike, *, version: Optional[int] = None,
              verify: bool = True,
              trusted_commit: Optional[CommitInfo] = None) -> WireProof:
        """A Merkle proof for ``key`` against a committed version.

        With ``verify=True`` (the default) the proof is checked locally
        before being returned, *anchored* to a commit record: the key
        must route to the shard the proof claims, that shard's root in
        the anchoring :class:`~repro.server.protocol.CommitInfo` must
        equal ``proof.root``, and the Merkle path must hash up to it — a
        lying server raises
        :class:`~repro.core.errors.ProofVerificationError` instead of
        being believed, including for fabricated absence answers.

        The anchor is ``trusted_commit`` when given (a commit record
        obtained out of band — the full outsourced-database trust
        model).  Otherwise it is the commit record this client already
        holds for the proven version: commits it performed itself and
        every ``COMMIT``/``SNAPSHOT``/branch answer it has seen are
        cached, and an unknown version is fetched via :meth:`snapshot`
        first — which anchors the proof to the *same story* the server
        tells all its commit-record consumers, but is only as
        trustworthy as that record's source.
        """
        key = coerce_key(key)
        anchor: Optional[CommitInfo] = None
        if verify:
            anchor = (trusted_commit if trusted_commit is not None
                      else self._anchor_commit(version))
            if version is None:
                # Pin the proof to the anchor's version so the server
                # cannot answer from a different (newer) state.
                version = anchor.version
            elif anchor.version != version:
                raise ProofVerificationError(
                    f"trusted commit is version {anchor.version}, not the "
                    f"requested version {version}")
        response = self.request(Request(op=Op.PROVE, key=key, version=version))
        proof = response.proof
        if verify:
            self._check_anchor(proof, key, anchor)
            proof.verify()
        return proof

    def _anchor_commit(self, version: Optional[int]) -> CommitInfo:
        """The commit record anchoring a verified proof at ``version``."""
        if version is not None:
            with self._lock:
                cached = self._commit_cache.get(version)
            if cached is not None:
                return cached
        return self.snapshot(version)

    @staticmethod
    def _check_anchor(proof: WireProof, key: bytes,
                      anchor: CommitInfo) -> None:
        """Reject a proof that is not tied to the anchoring commit."""
        if proof.key != key:
            raise ProofVerificationError(
                "proof answers a different key than was asked")
        num_shards = len(anchor.roots)
        if num_shards < 1:
            raise ProofVerificationError(
                "anchoring commit carries no shard roots")
        expected_shard = route_key(key, num_shards)
        if proof.shard_id != expected_shard:
            raise ProofVerificationError(
                f"proof claims shard {proof.shard_id} but the key routes "
                f"to shard {expected_shard} of {num_shards}")
        if proof.root != anchor.roots[expected_shard]:
            raise ProofVerificationError(
                f"proof root does not match the committed root of shard "
                f"{expected_shard} at version {anchor.version}")

    def verified_get(self, key: KeyLike, *, version: Optional[int] = None,
                     trusted_commit: Optional[CommitInfo] = None
                     ) -> Optional[bytes]:
        """Read one key with anchored proof verification.

        ``None`` means *proven absent*: the absence is checked against
        the committed shard root exactly like a present value, so a
        server cannot deny a key exists by fabricating an empty answer.
        See :meth:`prove` for the anchoring rules.
        """
        return self.prove(key, version=version, verify=True,
                          trusted_commit=trusted_commit).value

    # -- change feeds --------------------------------------------------------

    def subscribe(self, branch: Optional[str] = None, *,
                  from_version: Optional[int] = None,
                  prefix: Optional[KeyLike] = None) -> "RemoteSubscription":
        """Open a resumable change feed on ``branch`` over the wire.

        Mirrors :meth:`repro.api.repository.Repository.subscribe` but the
        filter is restricted to a key ``prefix`` (the only predicate the
        protocol can ship).  The returned
        :class:`RemoteSubscription` carries an explicit cursor; persist
        ``subscription.cursor.as_tuple()`` and pass it back via
        ``from_version``/:meth:`RemoteSubscription.seek` to resume
        exactly-once after a disconnect — both feed ops are idempotent,
        so transient connection failures retry transparently.
        """
        return RemoteSubscription(self, branch, from_version=from_version,
                                  prefix=prefix)

    # -- pipelining ----------------------------------------------------------

    def pipeline(self) -> Pipeline:
        """Check out one connection for many in-flight requests."""
        return Pipeline(self, self._checkout())

    def __repr__(self) -> str:
        return f"RemoteRepository(host={self.host!r}, port={self.port})"


class RemoteSubscription:
    """A change feed over the wire, resumable across connections.

    Obtained from :meth:`RemoteRepository.subscribe`.  Events are the
    same :class:`~repro.query.feed.ChangeEvent` records the in-process
    feed yields (commit digests rehydrated into
    :class:`~repro.hashing.digest.Digest`), and the cursor semantics are
    identical — the server is stateless, the cursor lives here, so a new
    client on a new connection resumes a persisted cursor exactly-once.
    """

    def __init__(self, client: RemoteRepository, branch: Optional[str], *,
                 from_version: Optional[int] = None,
                 prefix: Optional[KeyLike] = None):
        """Validate the branch server-side and position the cursor."""
        self.client = client
        self.branch = branch
        self.prefix = None if prefix is None else coerce_key(prefix)
        response = client.request(Request(
            op=Op.SUBSCRIBE, branch=branch, version=from_version))
        self.cursor = FeedCursor(response.cursor_version,
                                 response.cursor_offset)
        self.up_to_date = False

    def poll(self, limit: Optional[int] = None) -> List[ChangeEvent]:
        """One POLL_FEED round trip; advances the cursor past the answer."""
        response = self.client.request(Request(
            op=Op.POLL_FEED, branch=self.branch,
            version=self.cursor.version, feed_offset=self.cursor.offset,
            limit=limit or 0, prefix=self.prefix))
        events = [
            ChangeEvent(version, Digest(digest),
                        self.branch or "", key, old, new)
            for version, digest, key, old, new in (response.events or [])]
        self.cursor = FeedCursor(response.cursor_version,
                                 response.cursor_offset)
        self.up_to_date = response.up_to_date
        return events

    def __iter__(self):
        """Iterate every event from the cursor to the server's head."""
        while True:
            events = self.poll()
            for event in events:
                yield event
            if self.up_to_date:
                return

    def seek(self, cursor: FeedCursor) -> None:
        """Reposition at an explicit (e.g. persisted) cursor."""
        self.cursor = cursor
        self.up_to_date = False

    def __repr__(self) -> str:
        return (f"RemoteSubscription(branch={self.branch!r}, "
                f"cursor={self.cursor})")
