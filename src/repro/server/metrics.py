"""Server-side observability: per-op latency and admission-queue depths.

One :class:`ServerMetrics` instance lives on each
:class:`~repro.server.server.RepositoryServer`.  Admission workers call
the ``record_*`` hooks from both the asyncio loop thread and executor
threads, so every mutation takes the internal lock; readers get
consistent point-in-time copies via :meth:`queue_counters` /
:meth:`snapshot`.

The vocabulary deliberately reuses the core metrics types —
:class:`~repro.core.metrics.QueueCounters` for the bounded queues and
:class:`~repro.analysis.histogram.LatencyRecorder` for per-op service
latency — so server reports read like the cache/contention/GC reports
elsewhere in the codebase, and the backpressure invariant the tests
assert (queues drain to zero, ``admitted == completed``) is stated on
the same counters the benchmarks consume.
"""

from __future__ import annotations

import threading
from typing import Dict, List

from repro.analysis.histogram import LatencyRecorder
from repro.core.metrics import QueueCounters


class ServerMetrics:
    """Thread-safe accumulator for one server's lifetime counters."""

    def __init__(self, num_queues: int):
        self._lock = threading.Lock()
        self._queues = [QueueCounters() for _ in range(num_queues)]
        self._op_latency: Dict[str, LatencyRecorder] = {}
        #: Connections accepted over the server's lifetime.
        self.connections_opened = 0
        #: Connections that have finished (closed by either side).
        self.connections_closed = 0
        #: Malformed frames answered with a ``protocol`` error frame.
        self.protocol_errors = 0
        #: Responses that failed to send (encode over the frame limit,
        #: unexpected transport failure) without killing their worker.
        self.send_errors = 0
        #: Nodes shipped to sync peers via ``FETCH_NODES`` (count / bytes).
        self.sync_nodes_sent = 0
        self.sync_bytes_sent = 0
        #: Nodes landed from sync peers via ``PUSH_NODES`` (count / bytes).
        self.sync_nodes_received = 0
        self.sync_bytes_received = 0

    # -- mutation hooks (called by the server) -------------------------------

    def record_connection_opened(self) -> None:
        """Count one accepted connection."""
        with self._lock:
            self.connections_opened += 1

    def record_connection_closed(self) -> None:
        """Count one finished connection."""
        with self._lock:
            self.connections_closed += 1

    def record_protocol_error(self) -> None:
        """Count one malformed frame."""
        with self._lock:
            self.protocol_errors += 1

    def record_send_error(self) -> None:
        """Count one response that could not be sent as encoded."""
        with self._lock:
            self.send_errors += 1

    def record_sync_sent(self, nodes: int, payload_bytes: int) -> None:
        """Count one ``FETCH_NODES`` answer shipped to a sync peer."""
        with self._lock:
            self.sync_nodes_sent += nodes
            self.sync_bytes_sent += payload_bytes

    def record_sync_received(self, nodes: int, payload_bytes: int) -> None:
        """Count one ``PUSH_NODES`` batch landed from a sync peer."""
        with self._lock:
            self.sync_nodes_received += nodes
            self.sync_bytes_received += payload_bytes

    def record_admitted(self, queue: int) -> None:
        """A request entered queue ``queue``; depth rises."""
        with self._lock:
            counters = self._queues[queue]
            counters.admitted += 1
            counters.depth += 1
            counters.peak_depth = max(counters.peak_depth, counters.depth)

    def record_rejected(self, queue: int) -> None:
        """A request was refused with BUSY because queue ``queue`` was full."""
        with self._lock:
            self._queues[queue].rejected_busy += 1

    def record_completed(self, queue: int, op_name: str, seconds: float) -> None:
        """A request from queue ``queue`` finished after ``seconds``."""
        with self._lock:
            counters = self._queues[queue]
            counters.completed += 1
            counters.depth -= 1
            recorder = self._op_latency.get(op_name)
            if recorder is None:
                recorder = self._op_latency[op_name] = LatencyRecorder()
            recorder.record(seconds)

    # -- readers -------------------------------------------------------------

    def queue_counters(self) -> List[QueueCounters]:
        """Point-in-time copies of every queue's counters."""
        with self._lock:
            return [counters.copy() for counters in self._queues]

    def total_queue_counters(self) -> QueueCounters:
        """All queues merged into one :class:`QueueCounters`."""
        merged = QueueCounters()
        for counters in self.queue_counters():
            merged = merged.merge(counters)
        return merged

    def snapshot(self) -> Dict[str, object]:
        """A serialisable report: connections, queues, per-op latency."""
        with self._lock:
            queues = [counters.copy() for counters in self._queues]
            latency = {name: recorder.summary()
                       for name, recorder in self._op_latency.items()}
            report: Dict[str, object] = {
                "connections_opened": self.connections_opened,
                "connections_closed": self.connections_closed,
                "protocol_errors": self.protocol_errors,
                "send_errors": self.send_errors,
                "sync_nodes_sent": self.sync_nodes_sent,
                "sync_bytes_sent": self.sync_bytes_sent,
                "sync_nodes_received": self.sync_nodes_received,
                "sync_bytes_received": self.sync_bytes_received,
            }
        report["queues"] = [
            {
                "admitted": q.admitted,
                "completed": q.completed,
                "rejected_busy": q.rejected_busy,
                "depth": q.depth,
                "peak_depth": q.peak_depth,
                "rejection_ratio": q.rejection_ratio,
            }
            for q in queues
        ]
        report["op_latency"] = latency
        return report
