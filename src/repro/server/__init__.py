"""Network front door: wire protocol, asyncio server, and pooled client.

This package turns the in-process service stack into an actual service
(ROADMAP open item 1): :mod:`repro.server.protocol` defines a
length-prefixed binary wire format over all repository operations
(including ``prove``, so remote clients can verify answers against a
commit root they trust); :mod:`repro.server.server` runs an asyncio
front door that admits requests into bounded per-shard queues feeding a
:class:`~repro.service.executor.ServiceExecutor`, rejecting with ``BUSY``
frames under overload; :mod:`repro.server.client` provides
:class:`~repro.server.client.RemoteRepository`, a pooled, pipelining
client mirroring the local :class:`~repro.api.Repository` surface; and
:mod:`repro.server.metrics` surfaces per-op latency histograms and queue
depths.  See ``docs/SERVER.md`` for the frame layout, the error-frame
table, and the backpressure invariants.
"""

from repro.server.client import RemoteRepository
from repro.server.metrics import ServerMetrics
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    CommitInfo,
    FrameDecoder,
    Op,
    Request,
    Response,
    Status,
    WireProof,
    decode_request,
    decode_response,
    encode_frame,
    encode_request,
    encode_response,
)
from repro.server.server import RepositoryServer, ServerThread

__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "CommitInfo",
    "FrameDecoder",
    "Op",
    "RemoteRepository",
    "RepositoryServer",
    "Request",
    "Response",
    "ServerMetrics",
    "ServerThread",
    "Status",
    "WireProof",
    "decode_request",
    "decode_response",
    "encode_frame",
    "encode_request",
    "encode_response",
]
