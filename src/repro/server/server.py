"""The asyncio front door: bounded admission queues over the service stack.

:class:`RepositoryServer` listens on a TCP socket, decodes request
frames (:mod:`repro.server.protocol`) and admits each request into one
of ``num_shards + 1`` **bounded** :class:`asyncio.Queue`\\ s: single-key
operations (``GET``, ``PROVE``) go to the queue of the shard that owns
the key, everything cross-shard or control-plane goes to the last
("control") queue.  A full queue rejects the request *immediately* with
a ``BUSY`` frame — the server never buffers without limit, so a slow
storage backend translates into visible backpressure at the clients
instead of unbounded memory growth (the invariant
``tests/server/test_backpressure.py`` hammers).

Each queue is drained by one worker coroutine that runs the blocking
handler on a small dispatch thread pool (sized to the queue count, so
every queue can make progress even when another queue's handler blocks
on slow storage).  Cross-shard handlers fan out through the shared
:class:`~repro.service.executor.ServiceExecutor` — a *separate* pool, so
a handler waiting on its shard tasks can never deadlock against them.

Failure handling draws the line at the frame boundary: an operation
error (unknown key, unknown branch, a shard task failing) is answered
with an ``ERROR`` frame and the connection remains usable, while a
*protocol* error (malformed frame) is answered with a best-effort
``ERROR`` frame and then the connection is closed, because a byte
stream that failed to parse has no trustworthy frame boundary to resume
from.  Graceful shutdown stops accepting, drains every queue, then
closes connections — in-flight requests are answered, never dropped.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Set, Tuple, Union

from repro.core.errors import (
    InvalidParameterError,
    KeyNotFoundError,
    ProtocolError,
    ReproError,
    SyncHeadMovedError,
    SyncIntegrityError,
)
from repro.core.version import UnknownBranchError
from repro.hashing.digest import Digest
from repro.server import protocol
from repro.server.metrics import ServerMetrics
from repro.server.protocol import (
    CommitInfo,
    Op,
    Request,
    Response,
    Status,
    WireBranchHead,
    WireProof,
)
from repro.service.executor import ServiceExecutor, ShardExecutionError
from repro.service.service import ServiceCommit, VersionedKVService

#: Bytes read from a socket per loop iteration.
_READ_CHUNK = 64 * 1024

#: Default capacity of each admission queue.
DEFAULT_QUEUE_CAPACITY = 64


def _error_code_for(exc: BaseException) -> str:
    """The wire error code for an exception (see docs/SERVER.md table)."""
    if isinstance(exc, KeyNotFoundError):
        return "key_not_found"
    if isinstance(exc, UnknownBranchError):
        return "unknown_branch"
    if isinstance(exc, InvalidParameterError):
        return "invalid_parameter"
    if isinstance(exc, ShardExecutionError):
        return "shard_execution"
    if isinstance(exc, ProtocolError):
        return "protocol"
    if isinstance(exc, SyncIntegrityError):
        return "sync_integrity"
    if isinstance(exc, SyncHeadMovedError):
        return "sync_head_moved"
    if isinstance(exc, ReproError):
        return "repro_error"
    return "internal"


def _commit_info(commit: ServiceCommit) -> CommitInfo:
    """Convert a :class:`ServiceCommit` to its wire form."""
    return CommitInfo(
        version=commit.version,
        digest=commit.digest.raw,
        branch=commit.branch,
        parents=tuple(commit.parents),
        timestamp=commit.timestamp,
        message=commit.message,
        roots=tuple(None if root is None else root.raw for root in commit.roots),
    )


class _Connection:
    """One accepted client connection (reader task + serialized writes)."""

    def __init__(self, server: "RepositoryServer",
                 reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self.server = server
        self.reader = reader
        self.writer = writer
        self.decoder = protocol.FrameDecoder(server.max_frame_bytes)
        self._write_lock = asyncio.Lock()
        self.closing = False
        #: Requests admitted for this connection but not yet answered.
        self.inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()

    def note_admitted(self) -> None:
        """One request for this connection entered an admission queue."""
        self.inflight += 1
        self._idle.clear()

    def note_done(self) -> None:
        """One admitted request was answered (or abandoned)."""
        self.inflight -= 1
        if self.inflight <= 0:
            self._idle.set()

    async def wait_idle(self, timeout: float = 30.0) -> None:
        """Wait until every admitted request has been answered."""
        try:
            await asyncio.wait_for(self._idle.wait(), timeout)
        except asyncio.TimeoutError:
            pass

    async def send(self, response: Response) -> None:
        """Encode and write one response frame (safe from many tasks)."""
        frame = protocol.encode_frame(protocol.encode_response(response),
                                      self.server.max_frame_bytes)
        async with self._write_lock:
            if self.closing:
                return
            try:
                self.writer.write(frame)
                await self.writer.drain()
            except (ConnectionError, OSError, RuntimeError):
                # The client went away mid-response; the read loop will
                # observe EOF and retire the connection.
                self.closing = True

    async def close(self) -> None:
        """Close the transport (idempotent)."""
        async with self._write_lock:
            if self.closing:
                return
            self.closing = True
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, RuntimeError):
            pass


class RepositoryServer:
    """Serves a repository (or raw service) over the wire protocol.

    Parameters
    ----------
    repository:
        A :class:`repro.api.Repository` or a bare
        :class:`~repro.service.VersionedKVService` to serve.
    host / port:
        Listen address; port 0 picks a free port (read :attr:`address`
        after :meth:`start`).
    executor:
        A :class:`ServiceExecutor` to share; by default the server
        creates (and then owns) one over the service.
    queue_capacity:
        Bound of each admission queue; a full queue answers ``BUSY``.
    max_frame_bytes:
        Frame size limit enforced on both directions.
    """

    def __init__(self, repository, *, host: str = "127.0.0.1", port: int = 0,
                 executor: Optional[ServiceExecutor] = None,
                 queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
                 max_frame_bytes: int = protocol.MAX_FRAME_BYTES):
        if queue_capacity <= 0:
            raise InvalidParameterError("queue_capacity must be positive")
        if isinstance(repository, VersionedKVService):
            from repro.api.repository import Repository
            repository = Repository.from_service(repository, owns_service=False)
        self.repository = repository
        self.service: VersionedKVService = repository.service
        self.host = host
        self.port = port
        self.max_frame_bytes = max_frame_bytes
        self.queue_capacity = queue_capacity
        self._owns_executor = executor is None
        self.executor = executor or ServiceExecutor(self.service)
        #: One queue per shard for single-key ops + one control queue.
        self.num_queues = self.service.num_shards + 1
        self.metrics = ServerMetrics(self.num_queues)
        self._queues: List[asyncio.Queue] = []
        self._workers: List[asyncio.Task] = []
        self._connections: Set[_Connection] = set()
        self._reader_tasks: Set[asyncio.Task] = set()
        self._dispatch: Optional[ThreadPoolExecutor] = None
        self._listener: Optional[asyncio.base_events.Server] = None
        self._stopped: Optional[asyncio.Event] = None
        self._draining = False

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (valid after :meth:`start`)."""
        return (self.host, self.port)

    async def start(self) -> Tuple[str, int]:
        """Bind the listener and start the queue workers."""
        if self._listener is not None:
            raise RuntimeError("server already started")
        self._stopped = asyncio.Event()
        self._queues = [asyncio.Queue(maxsize=self.queue_capacity)
                        for _ in range(self.num_queues)]
        self._dispatch = ThreadPoolExecutor(
            max_workers=self.num_queues, thread_name_prefix="repro-serve")
        self._workers = [asyncio.ensure_future(self._worker(index))
                         for index in range(self.num_queues)]
        self._listener = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.host, self.port = self._listener.sockets[0].getsockname()[:2]
        return self.address

    async def serve_forever(self) -> None:
        """Block until :meth:`shutdown` completes (starts if needed)."""
        if self._listener is None:
            await self.start()
        await self._stopped.wait()

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, finish queued work, close.

        In-flight and already-admitted requests are executed and
        answered; only then are connections closed.  Idempotent.
        """
        if self._listener is None or self._draining:
            return
        self._draining = True
        self._listener.close()
        await self._listener.wait_closed()
        # Everything admitted before the listener closed gets answered.
        for queue in self._queues:
            await queue.join()
        for worker in self._workers:
            worker.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        for task in list(self._reader_tasks):
            task.cancel()
        await asyncio.gather(*self._reader_tasks, return_exceptions=True)
        for connection in list(self._connections):
            await connection.close()
        self._connections.clear()
        if self._dispatch is not None:
            self._dispatch.shutdown(wait=True)
        if self._owns_executor:
            self.executor.close()
        self._stopped.set()

    # -- connection handling -----------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        connection = _Connection(self, reader, writer)
        self._connections.add(connection)
        self.metrics.record_connection_opened()
        task = asyncio.current_task()
        if task is not None:
            self._reader_tasks.add(task)
        try:
            await self._read_loop(connection)
        except asyncio.CancelledError:
            pass
        finally:
            if task is not None:
                self._reader_tasks.discard(task)
            await connection.close()
            self._connections.discard(connection)
            self.metrics.record_connection_closed()

    async def _read_loop(self, connection: _Connection) -> None:
        while not connection.closing:
            try:
                chunk = await connection.reader.read(_READ_CHUNK)
            except (ConnectionError, OSError):
                return
            if not chunk:
                return  # client closed; partial frames are simply dropped
            try:
                frames = connection.decoder.feed(chunk)
            except ProtocolError as exc:
                # The stream itself is unframeable — but frames that
                # completed before the corruption are valid pipelined
                # requests: admit them, let their answers go out, then
                # report the error and hang up.
                self.metrics.record_protocol_error()
                salvaged_ok = True
                for body in connection.decoder.take_completed():
                    if not await self._admit(connection, body):
                        salvaged_ok = False
                        break
                await connection.wait_idle()
                if salvaged_ok:
                    await connection.send(Response(
                        status=Status.ERROR, op=Op.PING, request_id=0,
                        error_code="protocol", error_message=str(exc)))
                return
            for body in frames:
                if not await self._admit(connection, body):
                    # Earlier frames from this chunk may still be in
                    # flight; answer them before the close.
                    await connection.wait_idle()
                    return

    async def _admit(self, connection: _Connection, body: bytes) -> bool:
        """Decode one frame and enqueue it; False closes the connection."""
        try:
            request = protocol.decode_request(body)
        except ProtocolError as exc:
            # The frame boundary held but the body is garbage: answer,
            # then close — the codec gives no way to trust what follows.
            self.metrics.record_protocol_error()
            await connection.send(Response(
                status=Status.ERROR, op=Op.PING,
                request_id=protocol.peek_request_id(body),
                error_code="protocol", error_message=str(exc)))
            return False
        queue_index = self._route(request)
        queue = self._queues[queue_index]
        if queue.full() or self._draining:
            self.metrics.record_rejected(queue_index)
            await connection.send(Response(
                status=Status.BUSY, op=request.op,
                request_id=request.request_id,
                error_code="busy",
                error_message=f"admission queue {queue_index} is full"))
            return True
        self.metrics.record_admitted(queue_index)
        connection.note_admitted()
        queue.put_nowait((connection, request))
        return True

    def _route(self, request: Request) -> int:
        """Queue index for a request: owning shard, or the control queue."""
        if request.op in (Op.GET, Op.PROVE) and request.key is not None:
            return self.service.shard_of(request.key)
        return self.num_queues - 1

    # -- queue workers -------------------------------------------------------

    async def _worker(self, queue_index: int) -> None:
        queue = self._queues[queue_index]
        loop = asyncio.get_event_loop()
        while True:
            connection, request = await queue.get()
            started = time.perf_counter()
            try:
                try:
                    response = await loop.run_in_executor(
                        self._dispatch, self._execute, request)
                # repro-lint: disable=L5-exception-policy — any operation error must become an error frame; the connection and the queue's only worker survive (docs/SERVER.md error table)
                except Exception as exc:  # operation failed, connection lives
                    response = Response(
                        status=Status.ERROR, op=request.op,
                        request_id=request.request_id,
                        error_code=_error_code_for(exc),
                        error_message=str(exc))
                await self._answer(connection, response)
            finally:
                self.metrics.record_completed(
                    queue_index, request.op.name.lower(),
                    time.perf_counter() - started)
                connection.note_done()
                queue.task_done()

    async def _answer(self, connection: _Connection,
                      response: Response) -> None:
        """Send a response without ever killing the worker that calls it.

        ``encode_response`` raises :class:`ProtocolError` when a result
        body (a large ``SCAN``/``DIFF``/``GET_MANY``) exceeds
        ``max_frame_bytes``; the client must still get an answer and the
        queue's only worker must survive, so an encode failure degrades
        to a small ``response_too_large`` error frame and any other send
        failure is counted instead of propagating.
        """
        try:
            await connection.send(response)
            return
        except asyncio.CancelledError:
            raise
        except ProtocolError as exc:
            self.metrics.record_send_error()
            fallback = Response(
                status=Status.ERROR, op=response.op,
                request_id=response.request_id,
                error_code="response_too_large",
                error_message=str(exc))
        # repro-lint: disable=L5-exception-policy — a send failure must never kill the queue's only worker (PR 6 review fix); it is counted in ServerMetrics.send_errors instead
        except Exception:
            self.metrics.record_send_error()
            return
        try:
            await connection.send(fallback)
        except asyncio.CancelledError:
            raise
        # repro-lint: disable=L5-exception-policy — best-effort fallback frame on an already-failing connection; the error was already counted and the worker must survive
        except Exception:
            pass

    # -- request execution (dispatch-pool threads) ----------------------------

    def _execute(self, request: Request) -> Response:
        """Run one decoded request against the service stack."""
        op = request.op
        response = Response(status=Status.OK, op=op, request_id=request.request_id)
        if op is Op.PING:
            pass
        elif op is Op.GET:
            response.value = self.service.get(
                request.key, default=None, version=request.version)
        elif op is Op.GET_MANY:
            response.values = self.executor.get_many(
                request.keys or [], version=request.version)
        elif op is Op.PUT_MANY:
            items = request.items or []
            self.executor.put_many(items)
            response.ack_count = len(items)
        elif op is Op.REMOVE_MANY:
            keys = request.keys or []
            self.executor.remove_many(keys)
            response.ack_count = len(keys)
        elif op is Op.SCAN:
            response.items, response.truncated = self._scan(request)
        elif op is Op.DIFF:
            left = (request.version if request.version is not None
                    else self.service.snapshot())
            entries = self.executor.diff(left, request.right_version).entries
            response.diff_entries = [(e.key, e.left, e.right) for e in entries]
        elif op is Op.COMMIT:
            response.commit = _commit_info(self.executor.commit(request.message))
        elif op is Op.SNAPSHOT:
            response.commit = _commit_info(self._resolve_commit(request.version))
        elif op is Op.BRANCHES:
            response.branches = self.repository.branches()
        elif op is Op.BRANCH_CREATE:
            self.repository.create_branch(request.branch, request.from_branch)
            response.commit = _commit_info(
                self.service.branch_head(request.branch))
        elif op is Op.BRANCH_HEAD:
            response.commit = _commit_info(
                self.service.branch_head(request.branch))
        elif op is Op.PROVE:
            response.proof = self._prove(request)
        elif op is Op.FETCH_HEADS:
            response.num_shards = self.service.router.num_shards
            response.heads = []
            for branch in self.service.branches():
                head = self.service.branch_head(branch)
                response.heads.append(WireBranchHead(
                    branch=branch,
                    digest=head.digest.raw,
                    roots=tuple(None if root is None else root.raw
                                for root in head.roots),
                    ancestry=tuple(
                        digest.raw for digest
                        in self.service.ancestry_digests(branch)),
                ))
        elif op is Op.FETCH_NODES:
            digests = [Digest(raw) for raw in (request.digests or [])]
            if request.missing_only:
                response.mode_flag = True
                response.digests = [
                    digest.raw for digest in self.service.shard_missing_digests(
                        request.shard_id, digests)]
            else:
                response.items = [
                    (digest.raw, data) for digest, data
                    in self.service.shard_fetch_nodes(request.shard_id, digests)]
                self.metrics.record_sync_sent(
                    len(response.items),
                    sum(len(data) for _, data in response.items))
        elif op is Op.PUSH_NODES:
            if request.publish:
                response.mode_flag = True
                roots = [None if raw is None else Digest(raw)
                         for raw in (request.roots or [])]
                expected = (None if request.expected is None
                            else Digest(request.expected))
                response.commit = _commit_info(self.service.publish_roots(
                    request.branch, roots, message=request.message,
                    expected_digest=expected))
            else:
                pairs = [(Digest(raw), data)
                         for raw, data in (request.items or [])]
                response.ack_count = self.service.shard_import_nodes(
                    request.shard_id, pairs)
                self.metrics.record_sync_received(
                    len(pairs), sum(len(data) for _, data in pairs))
        elif op is Op.SUBSCRIBE:
            branch = request.branch or self.service.default_branch
            if (not self.service.has_branch(branch)
                    and branch != self.service.default_branch):
                raise UnknownBranchError(branch)
            response.cursor_version = request.version
            response.cursor_offset = 0
        elif op is Op.POLL_FEED:
            from repro.query.feed import FeedCursor, poll_feed
            branch = request.branch or self.service.default_branch
            events, cursor, up_to_date = poll_feed(
                self.service, branch,
                FeedCursor(request.version, request.feed_offset),
                limit=request.limit or None,
                filter=request.prefix)
            response.events = [
                (event.version, event.digest.raw, event.key,
                 event.old, event.new)
                for event in events]
            response.cursor_version = cursor.version
            response.cursor_offset = cursor.offset
            response.up_to_date = up_to_date
        else:  # pragma: no cover - decode_request validates the opcode
            raise ProtocolError(f"unhandled op: {op!r}")
        return response

    def _resolve_commit(self, version: Optional[int]) -> ServiceCommit:
        """A commit record for ``version`` (default branch head if None)."""
        if version is None:
            return self.service.branch_head(self.service.default_branch)
        snapshot = self.service.snapshot(version)
        assert snapshot.commit is not None
        return snapshot.commit

    def _scan(self, request: Request) -> Tuple[List[Tuple[bytes, bytes]], bool]:
        records = self.executor.scan(version=request.version)
        start, stop, prefix = request.start, request.stop, request.prefix
        selected: List[Tuple[bytes, bytes]] = []
        truncated = False
        for key, value in records:
            if start is not None and key < start:
                continue
            if stop is not None and key >= stop:
                break
            if prefix is not None:
                if not key.startswith(prefix):
                    if key > prefix:
                        break
                    continue
            if request.limit and len(selected) >= request.limit:
                truncated = True
                break
            selected.append((key, value))
        return selected, truncated

    def _prove(self, request: Request) -> WireProof:
        """Build a proof answer plus the shard root anchoring it."""
        key = request.key
        if request.version is None:
            commit = self.service.branch_head(self.service.default_branch)
        else:
            commit = self.service.snapshot(request.version).commit
        snapshot = self.service.snapshot(commit)
        shard_id = self.service.shard_of(key)
        shard_snap = snapshot.shards[shard_id]
        proof = shard_snap.prove(key)
        root = shard_snap.root_digest
        return WireProof(
            key=proof.key,
            value=proof.value,
            index_name=proof.index_name,
            shard_id=shard_id,
            root=None if root is None else root.raw,
            steps=[(step.level, step.node_bytes) for step in proof.steps],
        )


class ServerThread:
    """Runs a :class:`RepositoryServer` on a background event loop.

    The test suites and benchmarks need a live server without giving up
    their (synchronous) thread; this helper owns the loop thread::

        with ServerThread(RepositoryServer(repo)) as address:
            client = RemoteRepository(*address)

    :meth:`stop` performs the server's graceful drain before the loop
    exits; exiting the ``with`` block calls it.
    """

    def __init__(self, server: RepositoryServer):
        self.server = server
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The server's bound ``(host, port)``."""
        return self.server.address

    def start(self) -> Tuple[str, int]:
        """Start the loop thread; returns the bound address."""
        if self._thread is not None:
            raise RuntimeError("ServerThread already started")
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-server-loop")
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") from self._startup_error
        return self.address

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            try:
                loop.run_until_complete(self.server.start())
            # repro-lint: disable=L5-exception-policy — parked for the caller: ServerThread.start() re-raises this on the starting thread
            except BaseException as exc:
                self._startup_error = exc
                return
            finally:
                self._started.set()
            loop.run_until_complete(self.server.serve_forever())
        finally:
            loop.close()
            asyncio.set_event_loop(None)

    def stop(self) -> None:
        """Drain and stop the server, then join the loop thread."""
        if self._thread is None or self._loop is None:
            return
        if self._thread.is_alive():
            future = asyncio.run_coroutine_threadsafe(
                self.server.shutdown(), self._loop)
            future.result(timeout=60)
        self._thread.join(timeout=60)
        self._thread = None

    def __enter__(self) -> Tuple[str, int]:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
