"""The wire protocol: length-prefixed binary framing and op codecs.

Every message on a server connection is one *frame*::

    +----------------+---------------------------------------------+
    | length u32 BE  | body (exactly `length` bytes)               |
    +----------------+---------------------------------------------+

Request body::

    version u8 | op u8 | request_id u32 | op-specific payload

Response body::

    version u8 | status u8 | op u8 | request_id u32 | payload

``request_id`` is chosen by the client and echoed verbatim, so a client
may pipeline many requests on one connection and match responses that
complete out of order.  ``status`` is :data:`Status.OK`,
:data:`Status.ERROR` (payload: error code + message strings) or
:data:`Status.BUSY` (the admission queue was full — backpressure, see
``docs/SERVER.md``).

Integers are big-endian and unsigned; byte strings and UTF-8 strings are
``u32`` length-prefixed; optional values carry a one-byte presence flag.
The codec's hard contract — enforced by the fuzz suite in
``tests/server/test_protocol.py`` — is that *arbitrary* input bytes
either decode to a valid message or raise
:class:`~repro.core.errors.ProtocolError`: never another exception type,
never a read past the frame, never acceptance of trailing garbage, and
never an allocation driven by an unvalidated length field.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from enum import IntEnum
from typing import List, Optional, Sequence, Tuple

from repro.core.errors import ProtocolError
from repro.core.proof import MerkleProof, ProofStep

#: Protocol version byte carried by every frame; a server answering a
#: frame with a different version responds with an error frame.
PROTOCOL_VERSION = 1

#: Hard upper bound on one frame's body, bounding decoder allocations.
MAX_FRAME_BYTES = 32 * 1024 * 1024

#: Bytes of the frame length prefix.
LENGTH_PREFIX_BYTES = 4

#: Smallest legal body: version + op + request_id (a request header).
_MIN_BODY_BYTES = 6


class Op(IntEnum):
    """Operation codes carried by request frames (echoed in responses)."""

    PING = 1
    GET = 2
    GET_MANY = 3
    PUT_MANY = 4
    REMOVE_MANY = 5
    SCAN = 6
    DIFF = 7
    COMMIT = 8
    SNAPSHOT = 9
    BRANCHES = 10
    BRANCH_CREATE = 11
    BRANCH_HEAD = 12
    PROVE = 13
    FETCH_HEADS = 14
    FETCH_NODES = 15
    PUSH_NODES = 16
    SUBSCRIBE = 17
    POLL_FEED = 18


class Status(IntEnum):
    """Response status byte."""

    OK = 0
    ERROR = 1
    BUSY = 2


# ---------------------------------------------------------------------------
# Primitive writer / reader
# ---------------------------------------------------------------------------

class _Writer:
    """Accumulates the primitive encodings (all integers big-endian)."""

    __slots__ = ("_parts",)

    def __init__(self):
        self._parts: List[bytes] = []

    def u8(self, value: int) -> None:
        self._parts.append(bytes((value & 0xFF,)))

    def u32(self, value: int) -> None:
        self._parts.append(int(value).to_bytes(4, "big"))

    def u64(self, value: int) -> None:
        self._parts.append(int(value).to_bytes(8, "big"))

    def f64(self, value: float) -> None:
        self._parts.append(struct.pack(">d", value))

    def bytes_(self, value: bytes) -> None:
        self.u32(len(value))
        self._parts.append(bytes(value))

    def opt_bytes(self, value: Optional[bytes]) -> None:
        if value is None:
            self.u8(0)
        else:
            self.u8(1)
            self.bytes_(value)

    def str_(self, value: str) -> None:
        self.bytes_(value.encode("utf-8"))

    def opt_str(self, value: Optional[str]) -> None:
        if value is None:
            self.u8(0)
        else:
            self.u8(1)
            self.str_(value)

    def opt_u64(self, value: Optional[int]) -> None:
        if value is None:
            self.u8(0)
        else:
            self.u8(1)
            self.u64(value)

    def getvalue(self) -> bytes:
        return b"".join(self._parts)


class _Reader:
    """Bounds-checked decoder over one frame body.

    Every primitive read validates that the requested bytes exist inside
    the frame before touching them, so a malicious length field can make
    decoding *fail* (:class:`ProtocolError`) but never over-read or
    allocate beyond the frame it was handed.
    """

    __slots__ = ("_data", "_pos")

    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos

    def _take(self, count: int) -> bytes:
        if count < 0 or count > self.remaining:
            raise ProtocolError(
                f"truncated payload: need {count} byte(s) at offset "
                f"{self._pos}, have {self.remaining}")
        chunk = self._data[self._pos:self._pos + count]
        self._pos += count
        return chunk

    def u8(self) -> int:
        return self._take(1)[0]

    def u32(self) -> int:
        return int.from_bytes(self._take(4), "big")

    def u64(self) -> int:
        return int.from_bytes(self._take(8), "big")

    def f64(self) -> float:
        return struct.unpack(">d", self._take(8))[0]

    def bytes_(self) -> bytes:
        length = self.u32()
        return self._take(length)

    def opt_bytes(self) -> Optional[bytes]:
        return self.bytes_() if self._flag() else None

    def str_(self) -> str:
        raw = self.bytes_()
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"invalid UTF-8 string field: {exc}") from None

    def opt_str(self) -> Optional[str]:
        return self.str_() if self._flag() else None

    def opt_u64(self) -> Optional[int]:
        return self.u64() if self._flag() else None

    def _flag(self) -> bool:
        flag = self.u8()
        if flag not in (0, 1):
            raise ProtocolError(f"invalid presence flag: {flag}")
        return bool(flag)

    def count(self, min_item_bytes: int) -> int:
        """Read a list length, rejecting counts the frame cannot hold."""
        value = self.u32()
        if value * min_item_bytes > self.remaining:
            raise ProtocolError(
                f"list count {value} exceeds remaining payload "
                f"({self.remaining} byte(s))")
        return value

    def expect_end(self) -> None:
        if self.remaining:
            raise ProtocolError(
                f"{self.remaining} trailing byte(s) after payload")


# ---------------------------------------------------------------------------
# Messages
# ---------------------------------------------------------------------------

@dataclass
class Request:
    """One decoded client request (field usage depends on :attr:`op`)."""

    op: Op
    request_id: int = 0
    #: GET / PROVE: the single key.
    key: Optional[bytes] = None
    #: GET_MANY / REMOVE_MANY: the key list.
    keys: Optional[List[bytes]] = None
    #: PUT_MANY: the (key, value) pairs.
    items: Optional[List[Tuple[bytes, bytes]]] = None
    #: GET/GET_MANY/SCAN/SNAPSHOT/PROVE version selector, DIFF left side
    #: (``None`` = latest state).
    version: Optional[int] = None
    #: DIFF right side (``None`` = latest state).
    right_version: Optional[int] = None
    #: COMMIT message.
    message: str = ""
    #: BRANCH_CREATE / BRANCH_HEAD: the branch name.
    branch: Optional[str] = None
    #: BRANCH_CREATE: source branch (``None`` = the default branch).
    from_branch: Optional[str] = None
    #: SCAN bounds: start inclusive, stop exclusive, prefix filter.
    start: Optional[bytes] = None
    stop: Optional[bytes] = None
    prefix: Optional[bytes] = None
    #: SCAN: maximum records returned (0 = unlimited).
    limit: int = 0
    #: FETCH_NODES / PUSH_NODES (node mode): the target shard.
    shard_id: int = 0
    #: FETCH_NODES: True = answer only which digests the server lacks
    #: (a frontier-pruning probe), False = return the node bytes.
    missing_only: bool = False
    #: FETCH_NODES: the requested node digests.
    digests: Optional[List[bytes]] = None
    #: PUSH_NODES: True = head-publish mode (branch/roots/expected are
    #: used), False = node-transfer mode (shard_id/items are used).
    publish: bool = False
    #: PUSH_NODES (publish mode): per-shard root digests of the new head.
    roots: Optional[List[Optional[bytes]]] = None
    #: PUSH_NODES (publish mode): compare-and-set guard — the digest the
    #: branch head must still have (``None`` = branch must not exist).
    expected: Optional[bytes] = None
    #: POLL_FEED: raw diff entries already consumed from the commit after
    #: the cursor version (``version`` doubles as the cursor version and,
    #: for SUBSCRIBE, as the optional starting commit).
    feed_offset: int = 0


@dataclass
class CommitInfo:
    """Wire form of a :class:`~repro.service.ServiceCommit`."""

    version: int
    digest: bytes
    branch: str
    parents: Tuple[int, ...]
    timestamp: float
    message: str
    #: Per-shard root digests (``None`` = empty shard), the client-side
    #: anchor for verifying :class:`WireProof` answers.
    roots: Tuple[Optional[bytes], ...]


@dataclass
class WireProof:
    """Wire form of a :class:`~repro.core.proof.MerkleProof` answer.

    Carries everything a client needs to check the answer without
    trusting the server's value: the proof path, the shard that owns the
    key, and that shard's root digest in the version the proof was built
    against (``root`` is ``None`` for an empty shard, whose only honest
    answer is absence).
    """

    key: bytes
    value: Optional[bytes]
    index_name: str
    shard_id: int
    root: Optional[bytes]
    steps: List[Tuple[int, bytes]] = field(default_factory=list)

    def to_merkle_proof(self) -> MerkleProof:
        """Rebuild the structure-agnostic :class:`MerkleProof`."""
        return MerkleProof(
            self.key, self.value,
            [ProofStep(node_bytes, level) for level, node_bytes in self.steps],
            index_name=self.index_name)

    def verify(self) -> bool:
        """Verify the proof path against the carried shard root.

        Returns True when the proof checks out; raises
        :class:`~repro.core.errors.ProofVerificationError` when any link
        fails.  An absence answer from an empty shard (``root is None``,
        no steps) is vacuously valid — there is nothing to hash — but a
        claimed *value* without a root to anchor it is rejected.
        """
        from repro.core.errors import ProofVerificationError
        from repro.hashing.digest import Digest

        if self.root is None:
            if self.value is not None or self.steps:
                raise ProofVerificationError(
                    "proof claims a value/path but carries no shard root")
            return True
        return self.to_merkle_proof().verify(Digest(self.root))


@dataclass
class WireBranchHead:
    """Wire form of one branch head in a ``FETCH_HEADS`` answer.

    Carries what a sync peer needs to classify the branch relationship
    without further round trips: the head's content digest, its per-shard
    roots (the frontier entry points) and a bounded first-parent chain of
    ancestor content digests (for cross-replica common-base discovery —
    see ``docs/SYNC.md``).
    """

    branch: str
    digest: bytes
    roots: Tuple[Optional[bytes], ...]
    ancestry: Tuple[bytes, ...]


@dataclass
class Response:
    """One decoded server response (field usage depends on :attr:`op`)."""

    status: Status
    op: Op
    request_id: int = 0
    #: GET: the value (``None`` = key absent).
    value: Optional[bytes] = None
    #: GET_MANY: one optional value per requested key, in request order.
    values: Optional[List[Optional[bytes]]] = None
    #: SCAN: the (key, value) records, ascending keys.
    items: Optional[List[Tuple[bytes, bytes]]] = None
    #: SCAN: True when ``limit`` cut the result short.
    truncated: bool = False
    #: PUT_MANY / REMOVE_MANY: operations applied.
    ack_count: int = 0
    #: DIFF: (key, left value, right value) entries, ascending keys.
    diff_entries: Optional[List[Tuple[bytes, Optional[bytes], Optional[bytes]]]] = None
    #: COMMIT / SNAPSHOT / BRANCH_CREATE / BRANCH_HEAD: the commit record.
    commit: Optional[CommitInfo] = None
    #: BRANCHES: sorted branch names.
    branches: Optional[List[str]] = None
    #: PROVE: the proof answer.
    proof: Optional[WireProof] = None
    #: FETCH_HEADS: every branch head (plus the shard count in
    #: :attr:`num_shards`, so a peer can reject a shard-count mismatch).
    heads: Optional[List[WireBranchHead]] = None
    #: FETCH_HEADS: the serving repository's shard count.
    num_shards: int = 0
    #: FETCH_NODES (missing_only): the digests the server lacks.
    digests: Optional[List[bytes]] = None
    #: FETCH_NODES: echo of the request's missing_only flag;
    #: PUSH_NODES: echo of the request's publish flag.
    mode_flag: bool = False
    #: POLL_FEED: change events as (version, commit digest, key, old
    #: value, new value) tuples, in feed order.
    events: Optional[List[Tuple[int, bytes, bytes,
                                Optional[bytes], Optional[bytes]]]] = None
    #: SUBSCRIBE / POLL_FEED: the (resumable) cursor after this answer.
    cursor_version: Optional[int] = None
    cursor_offset: int = 0
    #: POLL_FEED: True when the cursor reached the branch head.
    up_to_date: bool = False
    #: ERROR / BUSY: machine-readable code and human-readable message.
    error_code: str = ""
    error_message: str = ""


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------

def encode_frame(body: bytes, max_frame_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Wrap a message body in the length-prefixed frame."""
    if len(body) > max_frame_bytes:
        raise ProtocolError(
            f"frame body of {len(body)} bytes exceeds the "
            f"{max_frame_bytes}-byte limit")
    return len(body).to_bytes(LENGTH_PREFIX_BYTES, "big") + body


class FrameDecoder:
    """Incremental frame splitter for a byte stream.

    Feed arbitrary chunks; complete frame bodies come back in order.
    Never buffers more than one frame beyond the declared length, and
    rejects declared lengths outside ``[_MIN_BODY_BYTES, max_frame_bytes]``
    before allocating anything — an attacker-controlled length field can
    therefore cost at most ``max_frame_bytes`` of memory.

    When a chunk completes some valid frames *and then* hits a corrupt
    length field, :meth:`feed` raises — but the frames completed before
    the corruption are not lost: they are held on the decoder and
    returned by :meth:`take_completed`, so a server can still answer the
    valid pipelined requests before reporting the error and hanging up.
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES):
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()
        self._completed: List[bytes] = []

    def feed(self, data: bytes) -> List[bytes]:
        """Append ``data``; return every frame body completed by it.

        On a corrupt length field this raises :class:`ProtocolError`;
        frames completed earlier in the stream remain retrievable via
        :meth:`take_completed`.
        """
        self._buffer.extend(data)
        frames = self._completed
        self._completed = []
        while True:
            if len(self._buffer) < LENGTH_PREFIX_BYTES:
                return frames
            length = int.from_bytes(self._buffer[:LENGTH_PREFIX_BYTES], "big")
            if length > self.max_frame_bytes:
                self._completed = frames
                raise ProtocolError(
                    f"declared frame length {length} exceeds the "
                    f"{self.max_frame_bytes}-byte limit")
            if length < _MIN_BODY_BYTES:
                self._completed = frames
                raise ProtocolError(
                    f"declared frame length {length} is below the "
                    f"{_MIN_BODY_BYTES}-byte message header")
            if len(self._buffer) < LENGTH_PREFIX_BYTES + length:
                return frames
            frames.append(bytes(
                self._buffer[LENGTH_PREFIX_BYTES:LENGTH_PREFIX_BYTES + length]))
            del self._buffer[:LENGTH_PREFIX_BYTES + length]

    def take_completed(self) -> List[bytes]:
        """Frames parsed before a :meth:`feed` error (cleared on return)."""
        frames, self._completed = self._completed, []
        return frames

    @property
    def buffered_bytes(self) -> int:
        """Bytes of the partial frame currently buffered."""
        return len(self._buffer)


def peek_request_id(body: bytes) -> int:
    """Best-effort request id from a (possibly malformed) request body.

    Used by the server to address an error frame at the request that
    failed to decode; returns 0 when even the header is unreadable.
    """
    if len(body) >= _MIN_BODY_BYTES:
        return int.from_bytes(body[2:6], "big")
    return 0


# ---------------------------------------------------------------------------
# Request codec
# ---------------------------------------------------------------------------

def encode_request(request: Request) -> bytes:
    """Encode a request body (pass through :func:`encode_frame` to send)."""
    writer = _Writer()
    writer.u8(PROTOCOL_VERSION)
    writer.u8(int(request.op))
    writer.u32(request.request_id)
    op = request.op
    if op is Op.PING or op is Op.BRANCHES:
        pass
    elif op is Op.GET or op is Op.PROVE:
        writer.bytes_(request.key or b"")
        writer.opt_u64(request.version)
    elif op is Op.GET_MANY:
        keys = request.keys or []
        writer.u32(len(keys))
        for key in keys:
            writer.bytes_(key)
        writer.opt_u64(request.version)
    elif op is Op.PUT_MANY:
        items = request.items or []
        writer.u32(len(items))
        for key, value in items:
            writer.bytes_(key)
            writer.bytes_(value)
    elif op is Op.REMOVE_MANY:
        keys = request.keys or []
        writer.u32(len(keys))
        for key in keys:
            writer.bytes_(key)
    elif op is Op.SCAN:
        writer.opt_bytes(request.start)
        writer.opt_bytes(request.stop)
        writer.opt_bytes(request.prefix)
        writer.u32(request.limit)
        writer.opt_u64(request.version)
    elif op is Op.DIFF:
        writer.opt_u64(request.version)
        writer.opt_u64(request.right_version)
    elif op is Op.COMMIT:
        writer.str_(request.message)
    elif op is Op.SNAPSHOT:
        writer.opt_u64(request.version)
    elif op is Op.BRANCH_CREATE:
        writer.str_(request.branch or "")
        writer.opt_str(request.from_branch)
    elif op is Op.BRANCH_HEAD:
        writer.str_(request.branch or "")
    elif op is Op.FETCH_HEADS:
        pass
    elif op is Op.FETCH_NODES:
        writer.u32(request.shard_id)
        writer.u8(1 if request.missing_only else 0)
        digests = request.digests or []
        writer.u32(len(digests))
        for digest in digests:
            writer.bytes_(digest)
    elif op is Op.PUSH_NODES:
        if request.publish:
            writer.u8(1)
            writer.str_(request.branch or "")
            roots = request.roots or []
            writer.u32(len(roots))
            for root in roots:
                writer.opt_bytes(root)
            writer.opt_bytes(request.expected)
            writer.str_(request.message)
        else:
            writer.u8(0)
            writer.u32(request.shard_id)
            items = request.items or []
            writer.u32(len(items))
            for digest, node_bytes in items:
                writer.bytes_(digest)
                writer.bytes_(node_bytes)
    elif op is Op.SUBSCRIBE:
        writer.str_(request.branch or "")
        writer.opt_u64(request.version)
    elif op is Op.POLL_FEED:
        writer.str_(request.branch or "")
        writer.opt_u64(request.version)
        writer.u32(request.feed_offset)
        writer.u32(request.limit)
        writer.opt_bytes(request.prefix)
    else:  # pragma: no cover - Op is exhaustive
        raise ProtocolError(f"cannot encode unknown op: {op!r}")
    return writer.getvalue()


def decode_request(body: bytes) -> Request:
    """Decode one request body; raises :class:`ProtocolError` on any flaw."""
    reader = _Reader(body)
    version = reader.u8()
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version} "
            f"(expected {PROTOCOL_VERSION})")
    op = _decode_op(reader.u8())
    request = Request(op=op, request_id=reader.u32())
    if op is Op.PING or op is Op.BRANCHES:
        pass
    elif op is Op.GET or op is Op.PROVE:
        request.key = reader.bytes_()
        request.version = reader.opt_u64()
    elif op is Op.GET_MANY:
        request.keys = [reader.bytes_() for _ in range(reader.count(4))]
        request.version = reader.opt_u64()
    elif op is Op.PUT_MANY:
        request.items = [(reader.bytes_(), reader.bytes_())
                         for _ in range(reader.count(8))]
    elif op is Op.REMOVE_MANY:
        request.keys = [reader.bytes_() for _ in range(reader.count(4))]
    elif op is Op.SCAN:
        request.start = reader.opt_bytes()
        request.stop = reader.opt_bytes()
        request.prefix = reader.opt_bytes()
        request.limit = reader.u32()
        request.version = reader.opt_u64()
    elif op is Op.DIFF:
        request.version = reader.opt_u64()
        request.right_version = reader.opt_u64()
    elif op is Op.COMMIT:
        request.message = reader.str_()
    elif op is Op.SNAPSHOT:
        request.version = reader.opt_u64()
    elif op is Op.BRANCH_CREATE:
        request.branch = reader.str_()
        request.from_branch = reader.opt_str()
    elif op is Op.BRANCH_HEAD:
        request.branch = reader.str_()
    elif op is Op.FETCH_HEADS:
        pass
    elif op is Op.FETCH_NODES:
        request.shard_id = reader.u32()
        request.missing_only = reader._flag()
        request.digests = [reader.bytes_() for _ in range(reader.count(4))]
    elif op is Op.PUSH_NODES:
        request.publish = reader._flag()
        if request.publish:
            request.branch = reader.str_()
            request.roots = [reader.opt_bytes()
                             for _ in range(reader.count(1))]
            request.expected = reader.opt_bytes()
            request.message = reader.str_()
        else:
            request.shard_id = reader.u32()
            request.items = [(reader.bytes_(), reader.bytes_())
                             for _ in range(reader.count(8))]
    elif op is Op.SUBSCRIBE:
        request.branch = reader.str_()
        request.version = reader.opt_u64()
    elif op is Op.POLL_FEED:
        request.branch = reader.str_()
        request.version = reader.opt_u64()
        request.feed_offset = reader.u32()
        request.limit = reader.u32()
        request.prefix = reader.opt_bytes()
    reader.expect_end()
    return request


def _decode_op(value: int) -> Op:
    try:
        return Op(value)
    except ValueError:
        raise ProtocolError(f"unknown opcode: {value}") from None


def _decode_status(value: int) -> Status:
    try:
        return Status(value)
    except ValueError:
        raise ProtocolError(f"unknown status byte: {value}") from None


# ---------------------------------------------------------------------------
# Response codec
# ---------------------------------------------------------------------------

def _encode_commit(writer: _Writer, commit: CommitInfo) -> None:
    writer.u64(commit.version)
    writer.bytes_(commit.digest)
    writer.str_(commit.branch)
    writer.u32(len(commit.parents))
    for parent in commit.parents:
        writer.u64(parent)
    writer.f64(commit.timestamp)
    writer.str_(commit.message)
    writer.u32(len(commit.roots))
    for root in commit.roots:
        writer.opt_bytes(root)


def _decode_commit(reader: _Reader) -> CommitInfo:
    version = reader.u64()
    digest = reader.bytes_()
    branch = reader.str_()
    parents = tuple(reader.u64() for _ in range(reader.count(8)))
    timestamp = reader.f64()
    message = reader.str_()
    roots = tuple(reader.opt_bytes() for _ in range(reader.count(1)))
    return CommitInfo(version, digest, branch, parents, timestamp, message, roots)


def encode_response(response: Response) -> bytes:
    """Encode a response body (pass through :func:`encode_frame` to send)."""
    writer = _Writer()
    writer.u8(PROTOCOL_VERSION)
    writer.u8(int(response.status))
    writer.u8(int(response.op))
    writer.u32(response.request_id)
    if response.status is not Status.OK:
        writer.str_(response.error_code)
        writer.str_(response.error_message)
        return writer.getvalue()
    op = response.op
    if op is Op.PING:
        pass
    elif op is Op.GET:
        writer.opt_bytes(response.value)
    elif op is Op.GET_MANY:
        values = response.values or []
        writer.u32(len(values))
        for value in values:
            writer.opt_bytes(value)
    elif op in (Op.PUT_MANY, Op.REMOVE_MANY):
        writer.u32(response.ack_count)
    elif op is Op.SCAN:
        items = response.items or []
        writer.u32(len(items))
        for key, value in items:
            writer.bytes_(key)
            writer.bytes_(value)
        writer.u8(1 if response.truncated else 0)
    elif op is Op.DIFF:
        entries = response.diff_entries or []
        writer.u32(len(entries))
        for key, left, right in entries:
            writer.bytes_(key)
            writer.opt_bytes(left)
            writer.opt_bytes(right)
    elif op in (Op.COMMIT, Op.SNAPSHOT, Op.BRANCH_CREATE, Op.BRANCH_HEAD):
        if response.commit is None:
            raise ProtocolError(f"{op.name} response requires a commit record")
        _encode_commit(writer, response.commit)
    elif op is Op.BRANCHES:
        names = response.branches or []
        writer.u32(len(names))
        for name in names:
            writer.str_(name)
    elif op is Op.PROVE:
        proof = response.proof
        if proof is None:
            raise ProtocolError("PROVE response requires a proof")
        writer.bytes_(proof.key)
        writer.opt_bytes(proof.value)
        writer.str_(proof.index_name)
        writer.u32(proof.shard_id)
        writer.opt_bytes(proof.root)
        writer.u32(len(proof.steps))
        for level, node_bytes in proof.steps:
            writer.u32(level)
            writer.bytes_(node_bytes)
    elif op is Op.FETCH_HEADS:
        writer.u32(response.num_shards)
        heads = response.heads or []
        writer.u32(len(heads))
        for head in heads:
            writer.str_(head.branch)
            writer.bytes_(head.digest)
            writer.u32(len(head.roots))
            for root in head.roots:
                writer.opt_bytes(root)
            writer.u32(len(head.ancestry))
            for digest in head.ancestry:
                writer.bytes_(digest)
    elif op is Op.FETCH_NODES:
        if response.mode_flag:
            writer.u8(1)
            digests = response.digests or []
            writer.u32(len(digests))
            for digest in digests:
                writer.bytes_(digest)
        else:
            writer.u8(0)
            items = response.items or []
            writer.u32(len(items))
            for digest, node_bytes in items:
                writer.bytes_(digest)
                writer.bytes_(node_bytes)
    elif op is Op.PUSH_NODES:
        if response.mode_flag:
            writer.u8(1)
            if response.commit is None:
                raise ProtocolError(
                    "PUSH_NODES publish response requires a commit record")
            _encode_commit(writer, response.commit)
        else:
            writer.u8(0)
            writer.u32(response.ack_count)
    elif op is Op.SUBSCRIBE:
        writer.opt_u64(response.cursor_version)
        writer.u32(response.cursor_offset)
    elif op is Op.POLL_FEED:
        events = response.events or []
        writer.u32(len(events))
        for version, digest, key, old, new in events:
            writer.u64(version)
            writer.bytes_(digest)
            writer.bytes_(key)
            writer.opt_bytes(old)
            writer.opt_bytes(new)
        writer.opt_u64(response.cursor_version)
        writer.u32(response.cursor_offset)
        writer.u8(1 if response.up_to_date else 0)
    else:  # pragma: no cover - Op is exhaustive
        raise ProtocolError(f"cannot encode response for op: {op!r}")
    return writer.getvalue()


def decode_response(body: bytes) -> Response:
    """Decode one response body; raises :class:`ProtocolError` on any flaw."""
    reader = _Reader(body)
    version = reader.u8()
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version} "
            f"(expected {PROTOCOL_VERSION})")
    status = _decode_status(reader.u8())
    op = _decode_op(reader.u8())
    response = Response(status=status, op=op, request_id=reader.u32())
    if status is not Status.OK:
        response.error_code = reader.str_()
        response.error_message = reader.str_()
        reader.expect_end()
        return response
    if op is Op.PING:
        pass
    elif op is Op.GET:
        response.value = reader.opt_bytes()
    elif op is Op.GET_MANY:
        response.values = [reader.opt_bytes() for _ in range(reader.count(1))]
    elif op in (Op.PUT_MANY, Op.REMOVE_MANY):
        response.ack_count = reader.u32()
    elif op is Op.SCAN:
        response.items = [(reader.bytes_(), reader.bytes_())
                          for _ in range(reader.count(8))]
        truncated = reader.u8()
        if truncated not in (0, 1):
            raise ProtocolError(f"invalid truncated flag: {truncated}")
        response.truncated = bool(truncated)
    elif op is Op.DIFF:
        response.diff_entries = [
            (reader.bytes_(), reader.opt_bytes(), reader.opt_bytes())
            for _ in range(reader.count(6))]
    elif op in (Op.COMMIT, Op.SNAPSHOT, Op.BRANCH_CREATE, Op.BRANCH_HEAD):
        response.commit = _decode_commit(reader)
    elif op is Op.BRANCHES:
        response.branches = [reader.str_() for _ in range(reader.count(4))]
    elif op is Op.PROVE:
        key = reader.bytes_()
        value = reader.opt_bytes()
        index_name = reader.str_()
        shard_id = reader.u32()
        root = reader.opt_bytes()
        steps = [(reader.u32(), reader.bytes_())
                 for _ in range(reader.count(8))]
        response.proof = WireProof(key, value, index_name, shard_id, root, steps)
    elif op is Op.FETCH_HEADS:
        response.num_shards = reader.u32()
        response.heads = []
        for _ in range(reader.count(13)):
            branch = reader.str_()
            digest = reader.bytes_()
            roots = tuple(reader.opt_bytes()
                          for _ in range(reader.count(1)))
            ancestry = tuple(reader.bytes_()
                             for _ in range(reader.count(4)))
            response.heads.append(
                WireBranchHead(branch, digest, roots, ancestry))
    elif op is Op.FETCH_NODES:
        response.mode_flag = reader._flag()
        if response.mode_flag:
            response.digests = [reader.bytes_()
                                for _ in range(reader.count(4))]
        else:
            response.items = [(reader.bytes_(), reader.bytes_())
                              for _ in range(reader.count(8))]
    elif op is Op.PUSH_NODES:
        response.mode_flag = reader._flag()
        if response.mode_flag:
            response.commit = _decode_commit(reader)
        else:
            response.ack_count = reader.u32()
    elif op is Op.SUBSCRIBE:
        response.cursor_version = reader.opt_u64()
        response.cursor_offset = reader.u32()
    elif op is Op.POLL_FEED:
        response.events = [
            (reader.u64(), reader.bytes_(), reader.bytes_(),
             reader.opt_bytes(), reader.opt_bytes())
            for _ in range(reader.count(18))]
        response.cursor_version = reader.opt_u64()
        response.cursor_offset = reader.u32()
        up_to_date = reader.u8()
        if up_to_date not in (0, 1):
            raise ProtocolError(f"invalid up_to_date flag: {up_to_date}")
        response.up_to_date = bool(up_to_date)
    reader.expect_end()
    return response
