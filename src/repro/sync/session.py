"""The sync engine: frontier transfer plus per-branch head settlement.

One call to :func:`sync_service` is one **anti-entropy session** between
a local :class:`~repro.service.VersionedKVService` and a peer behind a
:class:`~repro.sync.source.SyncSource`.  Per branch the session
classifies the two heads by content digest and ancestry:

=====================  ====================================================
heads                   action
=====================  ====================================================
equal digests           nothing (``in_sync``)
peer lacks the branch   push our frontier, CAS-create it there
we lack the branch      pull their frontier, CAS-create it here
ours in their ancestry  pull their frontier, fast-forward our head
theirs in our ancestry  push our frontier, CAS-advance their head
neither                 pull theirs, three-way merge locally, push merged
=====================  ====================================================

**Frontier transfer.**  Both directions walk the Merkle structure top
down from the missing head's roots, probing the receiver per level and
pruning every subtree whose root digest the receiver holds, then land
the fetched levels deepest first.  That order preserves the invariant
all pruning relies on — *a held digest implies its whole subtree is
held* — and makes each landed level a durable resume checkpoint: an
interrupted session restarts from the frontier and never re-pays
bandwidth for subtrees that already landed.  Traffic is proportional to
the structural divergence, never the dataset.

**Trust.**  Every pulled node is re-hashed against the digest it was
requested under before its bytes are parsed or stored
(:class:`~repro.core.errors.SyncIntegrityError` otherwise), and head
publishes are compare-and-set against the digest observed when the
session opened (:class:`~repro.core.errors.SyncHeadMovedError` on a
lost race) — a lying peer cannot poison a store, and a concurrent
writer cannot be silently overwritten.

**Divergence.**  A diverged branch is settled by the same three-way
merge the branch API uses (:func:`repro.api.merge.three_way_roots`),
against the newest common ancestor found by matching the peer's
ancestry digests to local commits.  Conflicts are surfaced as
:class:`~repro.core.errors.MergeConflictError` unless the caller passes
a resolver; for replicas to *converge* under conflicting writes the
resolver must be deterministic and symmetric (the same winner regardless
of which replica runs the merge) — e.g. take the lexicographically
greater value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.errors import (
    InvalidParameterError,
    MergeConflictError,
    SyncError,
    SyncIntegrityError,
)
from repro.core.version import UnknownBranchError
from repro.hashing.digest import Digest, default_hash_function
from repro.sync.source import BranchState, LocalSyncSource, RemoteSyncSource, SyncSource


@dataclass
class BranchSyncReport:
    """What one branch's sync did.

    ``action`` is one of ``"in_sync"``, ``"pulled"``, ``"pushed"``,
    ``"created_local"``, ``"created_remote"`` or ``"merged"``;
    ``fast_forward`` marks the pull/push cases where one head was simply
    an ancestor of the other.  Node/byte counters cover this branch's
    share of the session's transfer (subtrees already transferred for an
    earlier branch of the same session are not re-counted — or re-sent).
    """

    branch: str
    action: str
    nodes_pulled: int = 0
    nodes_pushed: int = 0
    bytes_pulled: int = 0
    bytes_pushed: int = 0
    conflicts_resolved: int = 0
    fast_forward: bool = False


@dataclass
class SyncReport:
    """The outcome of one sync session, one entry per branch visited."""

    branches: List[BranchSyncReport] = field(default_factory=list)

    @property
    def nodes_pulled(self) -> int:
        """Nodes landed locally across every branch."""
        return sum(report.nodes_pulled for report in self.branches)

    @property
    def nodes_pushed(self) -> int:
        """Nodes landed on the peer across every branch."""
        return sum(report.nodes_pushed for report in self.branches)

    @property
    def bytes_pulled(self) -> int:
        """Payload bytes (digest + node) pulled across every branch."""
        return sum(report.bytes_pulled for report in self.branches)

    @property
    def bytes_pushed(self) -> int:
        """Payload bytes (digest + node) pushed across every branch."""
        return sum(report.bytes_pushed for report in self.branches)

    @property
    def total_nodes(self) -> int:
        """Nodes moved in either direction."""
        return self.nodes_pulled + self.nodes_pushed

    @property
    def total_bytes(self) -> int:
        """Payload bytes moved in either direction."""
        return self.bytes_pulled + self.bytes_pushed


def as_sync_source(peer) -> SyncSource:
    """Coerce ``peer`` into a :class:`~repro.sync.source.SyncSource`.

    Accepts a source directly, a wire client (anything with the
    ``fetch_heads`` surface of
    :class:`~repro.server.client.RemoteRepository`), or an in-process
    repository/service.
    """
    if isinstance(peer, SyncSource):
        return peer
    if hasattr(peer, "fetch_heads"):
        return RemoteSyncSource(peer)
    return LocalSyncSource(peer)


class _TransferSession:
    """Per-session transfer state: frontier walks plus dedup across branches.

    Branches (and sync directions) share subtrees through the
    content-addressed store; the per-shard ``seen`` sets make sure a
    digest settled once in a session — held by the receiver or
    transferred just now — is never probed or shipped again.
    """

    def __init__(self, service, source: SyncSource):
        self.service = service
        self.source = source
        self._hash = default_hash_function()
        num_shards = service.num_shards
        self._pulled: List[Set[bytes]] = [set() for _ in range(num_shards)]
        self._pushed: List[Set[bytes]] = [set() for _ in range(num_shards)]

    # -- pull (peer -> local) ------------------------------------------------

    def pull_roots(self, roots: Sequence[Optional[Digest]]) -> Tuple[int, int]:
        """Land every node under ``roots`` this replica lacks; (nodes, bytes)."""
        nodes = payload = 0
        for shard_id, root in enumerate(roots):
            if root is None:
                continue
            shard_nodes, shard_bytes = self._pull_shard(shard_id, root)
            nodes += shard_nodes
            payload += shard_bytes
        return nodes, payload

    def _pull_shard(self, shard_id: int, root: Digest) -> Tuple[int, int]:
        levels = self._walk(
            shard_id, root, seen=self._pulled[shard_id],
            probe=lambda missing: self.service.shard_missing_digests(
                shard_id, missing),
            fetch=lambda missing: self.source.fetch_nodes(shard_id, missing),
            verify=True)
        # Deepest level first: children land (and flush) before any parent,
        # so every imported batch is a resume checkpoint that keeps the
        # held-digest-implies-held-subtree invariant true mid-transfer.
        for level in reversed(levels):
            self.service.shard_import_nodes(shard_id, level)
        return self._totals(levels)

    # -- push (local -> peer) ------------------------------------------------

    def push_roots(self, roots: Sequence[Optional[Digest]]) -> Tuple[int, int]:
        """Land every node under ``roots`` the peer lacks; (nodes, bytes)."""
        nodes = payload = 0
        for shard_id, root in enumerate(roots):
            if root is None:
                continue
            shard_nodes, shard_bytes = self._push_shard(shard_id, root)
            nodes += shard_nodes
            payload += shard_bytes
        return nodes, payload

    def _push_shard(self, shard_id: int, root: Digest) -> Tuple[int, int]:
        levels = self._walk(
            shard_id, root, seen=self._pushed[shard_id],
            probe=lambda missing: self.source.missing_digests(
                shard_id, missing),
            fetch=lambda missing: self.service.shard_fetch_nodes(
                shard_id, missing),
            verify=False)
        for level in reversed(levels):
            self.source.push_nodes(shard_id, level)
        return self._totals(levels)

    # -- the frontier walk ---------------------------------------------------

    def _walk(self, shard_id: int, root: Digest, *, seen: Set[bytes],
              probe, fetch, verify: bool) -> List[List[Tuple[Digest, bytes]]]:
        """Top-down frontier descent: fetch every level the receiver lacks.

        ``probe`` returns the subset of a level the receiver is missing
        (pruning whole subtrees at every held digest), ``fetch`` reads
        those nodes from the sender.  With ``verify`` the fetched bytes
        are re-hashed against their claimed digests *before* being parsed
        for children — the untrusted-peer path.
        """
        levels: List[List[Tuple[Digest, bytes]]] = []
        frontier: List[Digest] = [root]
        while frontier:
            fresh = [digest for digest in frontier if digest.raw not in seen]
            if not fresh:
                break
            missing = probe(fresh)
            seen.update(digest.raw for digest in fresh)
            if not missing:
                break
            nodes = fetch(missing)
            if len(nodes) != len(missing):
                raise SyncError(
                    f"sync peer answered {len(nodes)} of {len(missing)} "
                    f"requested nodes for shard {shard_id}")
            if verify:
                for digest, data in nodes:
                    if self._hash.hash(data) != digest:
                        raise SyncIntegrityError(digest)
            levels.append(nodes)
            frontier = self._children(nodes, verify=verify)
        return levels

    def _children(self, nodes: Sequence[Tuple[Digest, bytes]], *,
                  verify: bool) -> List[Digest]:
        """The next frontier level: unique children of ``nodes``, in order."""
        children: List[Digest] = []
        level_seen: Set[bytes] = set()
        for digest, data in nodes:
            try:
                parsed = self.service.child_digests(data)
            except Exception as exc:
                if verify:
                    # The bytes hashed correctly, so this is a malformed
                    # *node*, not a transport problem: refuse it.
                    raise SyncIntegrityError(
                        digest,
                        f"sync peer sent unparseable node for digest "
                        f"{digest!r}: {exc!r}") from exc
                raise
            for child in parsed:
                if child.raw not in level_seen:
                    level_seen.add(child.raw)
                    children.append(child)
        return children

    @staticmethod
    def _totals(levels: Sequence[Sequence[Tuple[Digest, bytes]]]) -> Tuple[int, int]:
        nodes = sum(len(level) for level in levels)
        payload = sum(len(digest.raw) + len(data)
                      for level in levels for digest, data in level)
        return nodes, payload


def sync_service(service, peer, branch: Optional[str] = None, *,
                 resolver=None, message: str = "") -> SyncReport:
    """Run one anti-entropy session between ``service`` and ``peer``.

    ``branch=None`` visits the union of both replicas' branches (sorted);
    naming a branch restricts the session to it.  ``resolver`` settles
    merge conflicts on diverged branches (see
    :data:`repro.api.merge.Resolver`); without one a conflicting
    divergence raises :class:`~repro.core.errors.MergeConflictError` and
    neither head moves.  ``message`` labels the commits the session
    journals.  Returns a :class:`SyncReport` with one entry per branch.
    """
    source = as_sync_source(peer)
    if source.num_shards() != service.num_shards:
        raise InvalidParameterError(
            f"cannot sync: local replica has {service.num_shards} shards, "
            f"peer has {source.num_shards()}")
    remote_states = source.branch_states()
    local_branches = set(service.branches())
    if branch is None:
        names = sorted(local_branches | set(remote_states))
    else:
        if branch not in local_branches and branch not in remote_states:
            raise UnknownBranchError(branch)
        names = [branch]
    session = _TransferSession(service, source)
    report = SyncReport()
    for name in names:
        report.branches.append(_sync_branch(
            session, name, remote_states.get(name), resolver, message))
    return report


def _sync_branch(session: _TransferSession, branch: str,
                 remote: Optional[BranchState], resolver,
                 message: str) -> BranchSyncReport:
    """Settle one branch (see the module docstring's case table)."""
    service, source = session.service, session.source
    report = BranchSyncReport(branch=branch, action="in_sync")
    local = (service.branch_head(branch)
             if service.has_branch(branch) else None)

    if remote is None:
        assert local is not None  # names come from the branch union
        report.action = "created_remote"
        report.nodes_pushed, report.bytes_pushed = session.push_roots(
            local.roots)
        source.publish_head(branch, local.roots, None,
                            message or f"sync: create {branch}")
        return report

    if local is None:
        report.action = "created_local"
        report.nodes_pulled, report.bytes_pulled = session.pull_roots(
            remote.roots)
        service.publish_roots(branch, remote.roots,
                              message=message or f"sync: create {branch}",
                              expected_digest=None)
        return report

    if local.digest == remote.digest:
        return report

    if local.digest in remote.ancestry:
        # The peer is strictly ahead: pull its delta, fast-forward here.
        report.action = "pulled"
        report.fast_forward = True
        report.nodes_pulled, report.bytes_pulled = session.pull_roots(
            remote.roots)
        service.publish_roots(branch, remote.roots,
                              message=message or f"sync: fast-forward {branch}",
                              expected_digest=local.digest)
        return report

    local_ancestry = service.ancestry_digests(branch)
    if remote.digest in local_ancestry:
        # We are strictly ahead: push our delta, CAS-advance the peer.
        report.action = "pushed"
        report.fast_forward = True
        report.nodes_pushed, report.bytes_pushed = session.push_roots(
            local.roots)
        source.publish_head(branch, local.roots, remote.digest,
                            message or f"sync: fast-forward {branch}")
        return report

    return _merge_diverged(session, branch, local, remote, resolver,
                           message, report)


def _merge_diverged(session: _TransferSession, branch: str, local,
                    remote: BranchState, resolver, message: str,
                    report: BranchSyncReport) -> BranchSyncReport:
    """Settle a diverged branch: pull theirs, merge locally, push merged.

    The base is the newest digest in the peer's ancestry chain that names
    a local commit (content-digest matching — no shared journal needed);
    replicas with no common history merge against the empty base.  The
    merge commit is journalled with the local head as its single parent
    (the peer's commits do not exist in this journal); convergence is a
    property of *content* — after the session both replicas' heads carry
    identical roots and digest.
    """
    # Imports deferred: repro.api pulls this package in through
    # Repository.sync, so a module-level import would cycle.
    from repro.api.branch import route_staged_ops
    from repro.api.merge import _resolve, three_way_roots

    service, source = session.service, session.source
    report.action = "merged"
    report.nodes_pulled, report.bytes_pulled = session.pull_roots(remote.roots)

    base = None
    for digest in remote.ancestry:
        base = service.commit_for_digest(digest)
        if base is not None:
            break
    base_roots = (base.roots if base is not None
                  else (None,) * service.num_shards)

    takes, conflicts = three_way_roots(
        service, base_roots, local.roots, remote.roots)
    if conflicts:
        if resolver is None:
            raise MergeConflictError(
                conflicts,
                f"sync of branch {branch!r} diverged with conflicts on "
                f"{len(conflicts)} key(s); pass resolver= to settle them "
                "(it must be deterministic and symmetric for replicas to "
                "converge)")
        for conflict in conflicts:
            resolution = _resolve(resolver, conflict)
            if resolution != conflict.ours:
                shard_id = service.shard_of(conflict.key)
                takes.setdefault(shard_id, {})[conflict.key] = resolution
            report.conflicts_resolved += 1

    flat_takes = {key: value for shard_takes in takes.values()
                  for key, value in shard_takes.items()}
    if flat_takes:
        puts_by_shard, removes_by_shard = route_staged_ops(service, flat_takes)
        merged = service.commit_update(
            branch, local.roots, puts_by_shard, removes_by_shard,
            message=message or f"sync: merge {branch}",
            parents=(local.version,))
        merged_roots = merged.roots
        merged_digest = merged.digest
    else:
        # Nothing exclusive to the peer survived the merge: the local
        # state *is* the merge result; only the peer needs to move.
        merged_roots = local.roots
        merged_digest = local.digest

    report.nodes_pushed, report.bytes_pushed = session.push_roots(merged_roots)
    if merged_digest != remote.digest:
        source.publish_head(branch, merged_roots, remote.digest,
                            message or f"sync: merge {branch}")
    return report
