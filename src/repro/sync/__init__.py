"""Anti-entropy replication: diff-driven sync between repositories.

Two replicas of a SIRI repository converge by exchanging only the nodes
on their **structural frontier**: starting from the branch heads' root
digests, the transfer descends both Merkle structures in lock step and
prunes every subtree whose digest the receiver already holds — the same
structurally-invariant property that makes diffs proportional to the
change set makes replication traffic proportional to the *divergence*,
never the dataset (the paper's Section 5 argument applied to the wire).

The package splits along the trust boundary:

* :mod:`repro.sync.source` — :class:`SyncSource`, the five-method
  abstraction a sync session talks to: an in-process peer
  (:class:`LocalSyncSource`) or a wire server reached through
  :class:`~repro.server.client.RemoteRepository`
  (:class:`RemoteSyncSource`).
* :mod:`repro.sync.session` — the sync engine itself:
  :func:`~repro.sync.session.sync_service` classifies every branch
  (in sync / fast-forward / diverged), pulls and pushes frontier nodes
  children-before-parents so an interrupted transfer resumes from where
  it stopped, and settles divergence with a three-way merge whose
  conflicts are surfaced, never silently resolved.

The user-facing entry point is :meth:`repro.api.Repository.sync`; the
protocol contract is documented in ``docs/SYNC.md``.
"""

from repro.sync.session import (
    BranchSyncReport,
    SyncReport,
    as_sync_source,
    sync_service,
)
from repro.sync.source import (
    BranchState,
    LocalSyncSource,
    RemoteSyncSource,
    SyncSource,
)

__all__ = [
    "BranchState",
    "BranchSyncReport",
    "LocalSyncSource",
    "RemoteSyncSource",
    "SyncReport",
    "SyncSource",
    "as_sync_source",
    "sync_service",
]
