"""Sync peers: the five-method surface a replication session talks to.

A :class:`SyncSource` is the *other* replica in a sync session.  The
session (:mod:`repro.sync.session`) only ever needs five things from it:
its shard count, its branch heads (with enough ancestry to find a common
base), a membership probe for frontier pruning, node fetch, and node
push + head publish.  Everything else — locking, durability, transport —
is the source's problem, which is what lets the same session engine run
against an in-process service (:class:`LocalSyncSource`, used by the
property tests to drive thousands of partition/heal rounds without a
socket) and a remote wire server (:class:`RemoteSyncSource` over the
``FETCH_HEADS``/``FETCH_NODES``/``PUSH_NODES`` protocol ops).

Digests cross this boundary as :class:`~repro.hashing.digest.Digest`
values; the remote implementation converts to and from raw bytes at the
wire edge.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hashing.digest import Digest


@dataclass(frozen=True)
class BranchState:
    """One branch head as a sync peer advertises it.

    ``digest`` is the head commit's *content* digest (a hash over the
    shard roots), so two replicas that hold the same state advertise the
    same digest even though their journal version numbers differ.
    ``ancestry`` is the first-parent chain of content digests, newest
    first (``ancestry[0] == digest``), bounded by the peer — it is how
    the session finds a common base without the replicas sharing a
    journal.
    """

    branch: str
    digest: Digest
    roots: Tuple[Optional[Digest], ...]
    ancestry: Tuple[Digest, ...]


class SyncSource(abc.ABC):
    """The replica on the far side of a sync session.

    Implementations must preserve the receiver invariant the frontier
    descent relies on: a digest reported as *held* (absent from
    :meth:`missing_digests`) implies its entire subtree is held, which
    :meth:`push_nodes` guarantees by landing children before parents.
    """

    @abc.abstractmethod
    def num_shards(self) -> int:
        """The peer's shard count (must match the local replica's)."""

    @abc.abstractmethod
    def branch_states(self) -> Dict[str, BranchState]:
        """Every branch head the peer advertises, keyed by branch name."""

    @abc.abstractmethod
    def missing_digests(self, shard_id: int,
                        digests: Sequence[Digest]) -> List[Digest]:
        """The subset of ``digests`` the peer's shard does not hold."""

    @abc.abstractmethod
    def fetch_nodes(self, shard_id: int,
                    digests: Sequence[Digest]) -> List[Tuple[Digest, bytes]]:
        """Canonical ``(digest, node_bytes)`` pairs from the peer's shard."""

    @abc.abstractmethod
    def push_nodes(self, shard_id: int,
                   pairs: Sequence[Tuple[Digest, bytes]]) -> int:
        """Land verified nodes into the peer's shard; returns new-node count."""

    @abc.abstractmethod
    def publish_head(self, branch: str, roots: Sequence[Optional[Digest]],
                     expected: Optional[Digest], message: str) -> None:
        """Compare-and-set the peer's branch head to already-landed roots.

        ``expected`` is the content digest observed at
        :meth:`branch_states` time (``None`` = the branch must not exist
        on the peer); raises
        :class:`~repro.core.errors.SyncHeadMovedError` when a concurrent
        writer advanced the branch in between.
        """


class LocalSyncSource(SyncSource):
    """An in-process peer: another repository (or service) in this process.

    Wraps either a :class:`~repro.api.repository.Repository` or its
    backing :class:`~repro.service.VersionedKVService` directly; works on
    both the thread and the process shard backends, because everything
    goes through the service's replication entry points.
    """

    def __init__(self, target):
        service = getattr(target, "service", None)
        self._service = service if service is not None else target

    def num_shards(self) -> int:
        """The wrapped service's shard count."""
        return self._service.num_shards

    def branch_states(self) -> Dict[str, BranchState]:
        """Branch heads straight from the wrapped service's journal."""
        states: Dict[str, BranchState] = {}
        for branch in self._service.branches():
            head = self._service.branch_head(branch)
            states[branch] = BranchState(
                branch=branch,
                digest=head.digest,
                roots=tuple(head.roots),
                ancestry=tuple(self._service.ancestry_digests(branch)),
            )
        return states

    def missing_digests(self, shard_id: int,
                        digests: Sequence[Digest]) -> List[Digest]:
        """Probe the wrapped service's shard store."""
        return self._service.shard_missing_digests(shard_id, digests)

    def fetch_nodes(self, shard_id: int,
                    digests: Sequence[Digest]) -> List[Tuple[Digest, bytes]]:
        """Read node bytes from the wrapped service's shard store."""
        return self._service.shard_fetch_nodes(shard_id, digests)

    def push_nodes(self, shard_id: int,
                   pairs: Sequence[Tuple[Digest, bytes]]) -> int:
        """Verify-and-land nodes into the wrapped service's shard store."""
        return self._service.shard_import_nodes(shard_id, pairs)

    def publish_head(self, branch: str, roots: Sequence[Optional[Digest]],
                     expected: Optional[Digest], message: str) -> None:
        """CAS-publish through :meth:`VersionedKVService.publish_roots`."""
        self._service.publish_roots(branch, roots, message=message,
                                    expected_digest=expected)


class RemoteSyncSource(SyncSource):
    """A peer behind the wire server, reached through a pooled client.

    Wraps a :class:`~repro.server.client.RemoteRepository` (anything with
    its ``fetch_heads``/``missing_digests``/``fetch_nodes``/
    ``push_nodes``/``publish_head`` surface) and converts digests to raw
    bytes at the wire edge.  The client chunks node batches under the
    frame limit, so arbitrarily large frontiers transfer without
    oversized frames.
    """

    def __init__(self, client):
        self._client = client
        self._num_shards: Optional[int] = None

    def num_shards(self) -> int:
        """The server's shard count (learned from ``FETCH_HEADS``)."""
        if self._num_shards is None:
            self._num_shards, _ = self._client.fetch_heads()
        return self._num_shards

    def branch_states(self) -> Dict[str, BranchState]:
        """One ``FETCH_HEADS`` round trip: every head plus its ancestry."""
        self._num_shards, heads = self._client.fetch_heads()
        states: Dict[str, BranchState] = {}
        for head in heads:
            states[head.branch] = BranchState(
                branch=head.branch,
                digest=Digest(head.digest),
                roots=tuple(None if root is None else Digest(root)
                            for root in head.roots),
                ancestry=tuple(Digest(raw) for raw in head.ancestry),
            )
        return states

    def missing_digests(self, shard_id: int,
                        digests: Sequence[Digest]) -> List[Digest]:
        """``FETCH_NODES(missing_only=True)``: the frontier-pruning probe."""
        missing = self._client.missing_digests(
            shard_id, [digest.raw for digest in digests])
        return [Digest(raw) for raw in missing]

    def fetch_nodes(self, shard_id: int,
                    digests: Sequence[Digest]) -> List[Tuple[Digest, bytes]]:
        """``FETCH_NODES``: node bytes, chunked under the frame limit."""
        pairs = self._client.fetch_nodes(
            shard_id, [digest.raw for digest in digests])
        return [(Digest(raw), data) for raw, data in pairs]

    def push_nodes(self, shard_id: int,
                   pairs: Sequence[Tuple[Digest, bytes]]) -> int:
        """``PUSH_NODES``: ship nodes; the server verifies before storing."""
        return self._client.push_nodes(
            shard_id, [(digest.raw, data) for digest, data in pairs])

    def publish_head(self, branch: str, roots: Sequence[Optional[Digest]],
                     expected: Optional[Digest], message: str) -> None:
        """``PUSH_NODES(publish=True)``: the CAS head move on the server."""
        self._client.publish_head(
            branch,
            [None if root is None else root.raw for root in roots],
            None if expected is None else expected.raw,
            message=message)
