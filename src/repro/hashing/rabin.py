"""Rolling hashes for content-defined chunking.

POS-Tree (Section 3.4.3 of the paper) partitions its bottom data layer by
sliding a fixed-size window over the serialized records and declaring a
chunk boundary wherever a rolling fingerprint of the window matches a
boundary pattern (e.g. "low ``q`` bits are all ones").  This module
provides two interchangeable rolling hashes:

* :class:`RabinFingerprint` — a polynomial rolling hash over GF(2), the
  classic Rabin fingerprint used by LBFS-style chunkers and by the
  original POS-Tree implementation.
* :class:`BuzHash` — a cyclic-polynomial rolling hash that is cheaper to
  roll in pure Python; used by default in performance-sensitive paths.

Both expose the same :class:`RollingHash` interface: ``reset``, ``update``
(push one byte), ``roll`` (push one byte and evict the oldest one), and a
``value`` property.
"""

from __future__ import annotations

from typing import List, Sequence


class RollingHash:
    """Interface for windowed rolling hashes.

    A rolling hash maintains a fingerprint of the last ``window_size``
    bytes pushed into it and can update that fingerprint in O(1) when the
    window slides forward by one byte.
    """

    window_size: int

    def reset(self) -> None:
        """Clear all state, as if no bytes had been pushed."""
        raise NotImplementedError

    def update(self, byte: int) -> int:
        """Push one byte into the window and return the new fingerprint."""
        raise NotImplementedError

    def digest_window(self, window: bytes) -> int:
        """Compute the fingerprint of ``window`` from scratch."""
        self.reset()
        value = 0
        for b in window:
            value = self.update(b)
        return value

    @property
    def value(self) -> int:
        """The current fingerprint value."""
        raise NotImplementedError


class RabinFingerprint(RollingHash):
    """Polynomial rolling hash modulo an irreducible polynomial over GF(2).

    The fingerprint of a byte sequence ``b0 b1 ... bn`` is the residue of
    the polynomial with those coefficients modulo ``poly``.  When the
    window slides, the contribution of the evicted byte is removed using a
    precomputed table, so each roll is O(1).

    Parameters
    ----------
    window_size:
        Number of bytes covered by the fingerprint window.
    poly:
        Irreducible polynomial (as an integer bit mask) defining the
        fingerprint field.  The default is a commonly used degree-53
        polynomial.
    """

    DEFAULT_POLY = 0x3DA3358B4DC173  # degree-53 irreducible polynomial

    def __init__(self, window_size: int = 48, poly: int = DEFAULT_POLY):
        if window_size <= 0:
            raise ValueError("window_size must be positive")
        self.window_size = window_size
        self.poly = poly
        self.degree = poly.bit_length() - 1
        self._shift_table = self._build_shift_table()
        self._window_pop_table = None  # built lazily; depends on window_size
        self._buffer = []
        self._hash = 0

    def _mod(self, value: int) -> int:
        """Reduce ``value`` modulo the fingerprint polynomial."""
        degree = self.degree
        poly = self.poly
        while value.bit_length() > degree:
            value ^= poly << (value.bit_length() - degree - 1)
        return value

    def _build_shift_table(self) -> List[int]:
        """Precompute ``byte * x^degree mod poly`` for every byte value."""
        table = []
        for byte in range(256):
            table.append(self._mod(byte << self.degree))
        return table

    def _build_pop_table(self) -> List[int]:
        """Precompute the contribution of a byte leaving the window."""
        # A byte that entered the window w-1 rolls ago has been multiplied
        # by x^(8*(w-1)); to evict it we subtract (xor) that contribution.
        table = []
        shift = 8 * (self.window_size - 1)
        for byte in range(256):
            table.append(self._mod(byte << shift))
        return table

    def reset(self) -> None:
        self._buffer = []
        self._hash = 0

    def update(self, byte: int) -> int:
        """Push one byte; evicts the oldest byte once the window is full."""
        if self._window_pop_table is None:
            self._window_pop_table = self._build_pop_table()
        self._buffer.append(byte)
        if len(self._buffer) > self.window_size:
            old = self._buffer.pop(0)
            self._hash ^= self._window_pop_table[old]
        self._hash = self._mod((self._hash << 8) | byte)
        return self._hash

    @property
    def value(self) -> int:
        return self._hash


class BuzHash(RollingHash):
    """Cyclic-polynomial (BuzHash) rolling hash.

    Each byte value is mapped to a pseudo-random 64-bit word via a fixed
    substitution table; the window fingerprint is the XOR of the rotated
    words.  Rolling is two table lookups, two rotations and two XORs,
    which is considerably faster than :class:`RabinFingerprint` in pure
    Python while providing equally uniform boundary statistics.
    """

    _MASK64 = (1 << 64) - 1

    def __init__(self, window_size: int = 48, seed: int = 0x9E3779B97F4A7C15):
        if window_size <= 0:
            raise ValueError("window_size must be positive")
        self.window_size = window_size
        self.seed = seed
        self._table = self._build_table(seed)
        self._buffer = []
        self._hash = 0

    @staticmethod
    def _build_table(seed: int) -> Sequence[int]:
        """Derive 256 pseudo-random 64-bit words from ``seed``.

        Uses a splitmix64-style generator so the table is deterministic
        and reproducible across runs and platforms.
        """
        table = []
        state = seed & BuzHash._MASK64
        for _ in range(256):
            state = (state + 0x9E3779B97F4A7C15) & BuzHash._MASK64
            z = state
            z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & BuzHash._MASK64
            z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & BuzHash._MASK64
            z = z ^ (z >> 31)
            table.append(z)
        return table

    @staticmethod
    def _rotl(value: int, count: int) -> int:
        count %= 64
        return ((value << count) | (value >> (64 - count))) & BuzHash._MASK64

    def reset(self) -> None:
        self._buffer = []
        self._hash = 0

    def update(self, byte: int) -> int:
        table = self._table
        self._buffer.append(byte)
        if len(self._buffer) > self.window_size:
            old = self._buffer.pop(0)
            # The evicted byte was rotated window_size-1 times since entering.
            self._hash ^= self._rotl(table[old], self.window_size - 1)
        self._hash = (self._rotl(self._hash, 1) ^ table[byte]) & self._MASK64
        return self._hash

    @property
    def value(self) -> int:
        return self._hash
