"""Cryptographic and rolling-hash primitives used by all SIRI indexes.

This subpackage provides the two hashing layers the paper's index
structures are built on:

* :mod:`repro.hashing.digest` — collision-resistant digests (SHA-256 by
  default) wrapped in a small :class:`~repro.hashing.digest.Digest` value
  object.  Every node of every index is addressed by the digest of its
  canonical serialization, which is what makes the structures
  *tamper-evident* and enables content-addressed deduplication.
* :mod:`repro.hashing.rabin` — Rabin-fingerprint style rolling hashes used
  by POS-Tree (and the Noms-style Prolly Tree) for content-defined
  chunking.
* :mod:`repro.hashing.chunker` — boundary detection / content-defined
  chunking built on top of the rolling hash.
"""

from repro.hashing.digest import Digest, HashFunction, default_hash_function, hash_bytes
from repro.hashing.rabin import RabinFingerprint, RollingHash, BuzHash
from repro.hashing.chunker import (
    BoundaryPattern,
    ContentDefinedChunker,
    FixedSizeChunker,
    chunk_items,
)

__all__ = [
    "Digest",
    "HashFunction",
    "default_hash_function",
    "hash_bytes",
    "RabinFingerprint",
    "RollingHash",
    "BuzHash",
    "BoundaryPattern",
    "ContentDefinedChunker",
    "FixedSizeChunker",
    "chunk_items",
]
