"""Collision-resistant digests for content-addressed nodes.

Every index node in this library is stored in a content-addressed node
store keyed by the cryptographic digest of the node's canonical byte
serialization.  This module provides:

* :class:`Digest` — an immutable value object wrapping the raw digest
  bytes.  It compares by value, hashes cheaply, and renders as hex.
* :class:`HashFunction` — a tiny strategy object so that experiments can
  swap the digest algorithm (SHA-256 by default, SHA-1 or BLAKE2 for
  speed-oriented runs) without touching index code.

The paper (Section 2.3 and 3) relies on the digest both for *tamper
evidence* (Merkle-style recursive hashing) and for *deduplication*
(structurally identical nodes serialize to identical bytes, hence share a
digest and a single stored copy).
"""

from __future__ import annotations

import hashlib
from typing import Callable, Iterable, Optional


class Digest:
    """An immutable cryptographic digest identifying one stored node.

    Instances behave as value objects: equality and hashing are defined
    over the raw digest bytes, so a :class:`Digest` can be used directly
    as a dictionary key in node stores and caches.
    """

    __slots__ = ("_raw",)

    def __init__(self, raw: bytes):
        if not isinstance(raw, (bytes, bytearray)):
            raise TypeError(f"Digest requires bytes, got {type(raw).__name__}")
        if len(raw) == 0:
            raise ValueError("Digest cannot be empty")
        self._raw = bytes(raw)

    @property
    def raw(self) -> bytes:
        """The raw digest bytes."""
        return self._raw

    @property
    def hex(self) -> str:
        """Hexadecimal rendering of the digest."""
        return self._raw.hex()

    def short(self, length: int = 8) -> str:
        """A truncated hex form, convenient for logs and reprs."""
        return self.hex[:length]

    @classmethod
    def from_hex(cls, hexstr: str) -> "Digest":
        """Reconstruct a digest from its hexadecimal form."""
        return cls(bytes.fromhex(hexstr))

    def __bytes__(self) -> bytes:
        return self._raw

    def __len__(self) -> int:
        return len(self._raw)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Digest):
            return self._raw == other._raw
        if isinstance(other, (bytes, bytearray)):
            return self._raw == bytes(other)
        return NotImplemented

    def __lt__(self, other: "Digest") -> bool:
        if not isinstance(other, Digest):
            return NotImplemented
        return self._raw < other._raw

    def __hash__(self) -> int:
        return hash(self._raw)

    def __repr__(self) -> str:
        return f"Digest({self.short()}…)"


class HashFunction:
    """A named digest algorithm producing :class:`Digest` objects.

    Parameters
    ----------
    name:
        Any algorithm name accepted by :func:`hashlib.new`
        (e.g. ``"sha256"``, ``"sha1"``, ``"blake2b"``).
    digest_size:
        Optional digest size in bytes for variable-length algorithms
        (BLAKE2); ignored for fixed-size algorithms.
    """

    def __init__(self, name: str = "sha256", digest_size: Optional[int] = None):
        self.name = name
        self.digest_size_override = digest_size
        # Validate eagerly so misconfiguration fails at construction time.
        self._new()

    def _new(self) -> "hashlib._Hash":
        if self.digest_size_override is not None and self.name.startswith("blake2"):
            return hashlib.new(self.name, digest_size=self.digest_size_override)
        return hashlib.new(self.name)

    @property
    def digest_size(self) -> int:
        """Size in bytes of digests produced by this function."""
        return self._new().digest_size

    def hash(self, data: bytes) -> Digest:
        """Digest a byte string."""
        h = self._new()
        h.update(data)
        return Digest(h.digest())

    def hash_many(self, parts: Iterable[bytes]) -> Digest:
        """Digest the concatenation of several byte strings.

        This is the primitive used to roll up children hashes into a
        parent hash in the Merkle structures: the parent digest covers
        the ordered concatenation of its children's digests (plus any
        split keys), so any tampering below propagates to the root.
        """
        h = self._new()
        for part in parts:
            h.update(part)
        return Digest(h.digest())

    def __call__(self, data: bytes) -> Digest:
        return self.hash(data)

    def __repr__(self) -> str:
        return f"HashFunction({self.name!r})"


_DEFAULT = HashFunction("sha256")


def default_hash_function() -> HashFunction:
    """The library-wide default digest algorithm (SHA-256)."""
    return _DEFAULT


def hash_bytes(data: bytes, function: Optional[HashFunction] = None) -> Digest:
    """Convenience helper: digest ``data`` with ``function`` (default SHA-256)."""
    return (function or _DEFAULT).hash(data)


def hash_pair(left: bytes, right: bytes, function: Optional[HashFunction] = None) -> Digest:
    """Digest the concatenation of two byte strings (classic Merkle combine)."""
    return (function or _DEFAULT).hash_many((left, right))


HashCallable = Callable[[bytes], Digest]
