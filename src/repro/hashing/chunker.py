"""Content-defined chunking (boundary detection) for POS-Tree and Prolly Trees.

The bottom layer of a POS-Tree is an ordered run of serialized records.
Rather than splitting that run into fixed-size pages (which would make
node boundaries depend on *where* an insertion happened — the classic
boundary-shifting problem), the run is split wherever a rolling hash of a
sliding window matches a *boundary pattern*.  Because the boundary
decision depends only on local content, an insertion perturbs at most a
couple of neighbouring chunks and the rest of the tree is byte-identical
to the previous version — which is exactly what makes the structure
*structurally invariant* and highly deduplicatable.

Two chunkers are provided:

* :class:`ContentDefinedChunker` — sliding-window boundary detection with
  a configurable pattern, window and minimum/maximum chunk sizes.
* :class:`FixedSizeChunker` — a deliberately non-content-defined chunker
  used in the ablation experiments (Figure 19: disabling the Structurally
  Invariant property).

Both operate on *items* (already-serialized records or child entries) and
never split an item across chunks, mirroring the paper's description where
entries are atomic and boundaries are only placed between entries.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Iterable, List, Optional, Sequence

from repro.hashing.rabin import BuzHash, RollingHash


class BoundaryPattern:
    """A boundary predicate over rolling-hash fingerprints.

    A window matches the boundary when the low ``bits`` bits of its
    fingerprint equal ``value`` (by default all ones, as in the paper's
    example "the last 8 bits of the Rabin fingerprint equal 1...1").

    The expected chunk size implied by the pattern is ``2**bits`` items
    (each item contributes roughly one boundary trial), so callers
    typically derive ``bits`` from a target node size.
    """

    def __init__(self, bits: int = 6, value: Optional[int] = None):
        if bits <= 0 or bits > 48:
            raise ValueError("bits must be in (0, 48]")
        self.bits = bits
        self.mask = (1 << bits) - 1
        self.value = self.mask if value is None else (value & self.mask)

    @property
    def expected_chunk_items(self) -> int:
        """Expected number of boundary trials between two boundaries."""
        return 1 << self.bits

    def matches(self, fingerprint: int) -> bool:
        """Whether ``fingerprint`` ends a chunk."""
        return (fingerprint & self.mask) == self.value

    @classmethod
    def for_target_size(cls, target_size: int, average_item_size: int) -> "BoundaryPattern":
        """Derive a pattern whose expected chunk size is ``target_size`` bytes.

        ``average_item_size`` is the expected serialized size of one item;
        the pattern fires on average once per ``target_size /
        average_item_size`` items.
        """
        if target_size <= 0 or average_item_size <= 0:
            raise ValueError("sizes must be positive")
        expected_items = max(2, target_size // max(1, average_item_size))
        bits = max(1, expected_items.bit_length() - 1)
        return cls(bits=bits)

    def __repr__(self) -> str:
        return f"BoundaryPattern(bits={self.bits}, value={self.value:#x})"


class Chunk:
    """One chunk produced by a chunker: a list of items plus statistics."""

    __slots__ = ("items", "byte_size")

    def __init__(self, items: List[bytes], byte_size: int):
        self.items = items
        self.byte_size = byte_size

    def __len__(self) -> int:
        return len(self.items)

    def __repr__(self) -> str:
        return f"Chunk(items={len(self.items)}, bytes={self.byte_size})"


class ContentDefinedChunker:
    """Split a sequence of serialized items at content-defined boundaries.

    Parameters
    ----------
    pattern:
        The boundary pattern to match.
    window_size:
        Size in bytes of the rolling-hash window.
    min_items:
        Never emit a chunk with fewer than this many items (unless it is
        the trailing chunk), which bounds worst-case fan-in.
    max_items:
        Force a boundary after this many items even if no pattern match
        occurred, which bounds worst-case node size.  ``None`` disables
        the cap (pure content-defined behaviour).
    rolling_hash_factory:
        Callable producing a fresh :class:`RollingHash`; defaults to
        :class:`BuzHash`.
    fingerprint_mode:
        How the boundary fingerprint of each item is obtained:

        ``"window"``
            Roll a byte-wise sliding window across item bytes (the
            paper's literal description, and what the Noms Prolly Tree
            does even in internal layers — slowest but most faithful).
        ``"digest_tail"``
            POS-Tree's internal-layer optimization (Section 3.4.3): when
            items already *are* cryptographic hashes (child digests), the
            low-order bytes of the item are used directly as the
            fingerprint, saving redundant hash computations while
            preserving randomness.
        ``"item_hash"``
            Fingerprint each item with one fast keyed hash of its bytes.
            Content-defined (the decision depends only on the item's own
            bytes) and fast in pure Python; used by default for POS-Tree
            leaf layers in this reproduction.
    """

    def __init__(
        self,
        pattern: Optional[BoundaryPattern] = None,
        window_size: int = 48,
        min_items: int = 2,
        max_items: Optional[int] = None,
        rolling_hash_factory: Callable[[int], RollingHash] = BuzHash,
        fingerprint_mode: str = "item_hash",
        hash_item_directly: Optional[bool] = None,
    ):
        self.pattern = pattern or BoundaryPattern()
        self.window_size = window_size
        self.min_items = max(1, min_items)
        self.max_items = max_items
        self.rolling_hash_factory = rolling_hash_factory
        if hash_item_directly is not None:
            # Backwards-compatible boolean alias for the digest_tail mode.
            fingerprint_mode = "digest_tail" if hash_item_directly else "window"
        if fingerprint_mode not in ("window", "digest_tail", "item_hash"):
            raise ValueError(f"unknown fingerprint_mode: {fingerprint_mode!r}")
        self.fingerprint_mode = fingerprint_mode

    @property
    def hash_item_directly(self) -> bool:
        """Whether item bytes are used directly as fingerprints."""
        return self.fingerprint_mode == "digest_tail"

    def _item_fingerprint_direct(self, item: bytes) -> int:
        """Fingerprint an item by interpreting its trailing bytes as an integer.

        Used for internal layers where items are child digests: the digest
        is already uniformly random, so its low bits serve directly as the
        boundary fingerprint.
        """
        tail = item[-8:] if len(item) >= 8 else item
        return int.from_bytes(tail, "big")

    @staticmethod
    def _item_fingerprint_hash(item: bytes) -> int:
        """Fingerprint an item with one fast hash of its full content."""
        return int.from_bytes(hashlib.blake2b(item, digest_size=8).digest(), "big")

    def boundaries(self, items: Sequence[bytes]) -> List[int]:
        """Return the indexes *after which* a chunk boundary is placed.

        The returned list contains indexes ``i`` such that ``items[i]`` is
        the last item of a chunk.  The final index ``len(items) - 1`` is
        always implicitly a boundary and is not included.
        """
        cuts: List[int] = []
        if not items:
            return cuts

        pattern = self.pattern
        run_length = 0

        if self.fingerprint_mode in ("digest_tail", "item_hash"):
            fingerprint_of = (
                self._item_fingerprint_direct
                if self.fingerprint_mode == "digest_tail"
                else self._item_fingerprint_hash
            )
            for i, item in enumerate(items):
                run_length += 1
                if run_length < self.min_items:
                    continue
                fingerprint = fingerprint_of(item)
                if pattern.matches(fingerprint) or (
                    self.max_items is not None and run_length >= self.max_items
                ):
                    if i != len(items) - 1:
                        cuts.append(i)
                    run_length = 0
            return cuts

        roller = self.rolling_hash_factory(self.window_size)
        roller.reset()
        for i, item in enumerate(items):
            run_length += 1
            fingerprint = 0
            for byte in item:
                fingerprint = roller.update(byte)
            if run_length < self.min_items:
                continue
            if pattern.matches(fingerprint) or (
                self.max_items is not None and run_length >= self.max_items
            ):
                if i != len(items) - 1:
                    cuts.append(i)
                run_length = 0
                roller.reset()
        return cuts

    def chunk(self, items: Sequence[bytes]) -> List[Chunk]:
        """Split ``items`` into chunks at content-defined boundaries."""
        items = list(items)
        if not items:
            return []
        cuts = self.boundaries(items)
        chunks: List[Chunk] = []
        start = 0
        for cut in cuts:
            segment = items[start : cut + 1]
            chunks.append(Chunk(segment, sum(len(s) for s in segment)))
            start = cut + 1
        tail = items[start:]
        if tail:
            chunks.append(Chunk(tail, sum(len(s) for s in tail)))
        return chunks


class FixedSizeChunker:
    """Split items into chunks of a fixed item count.

    This deliberately ignores content, so the resulting node boundaries
    depend on insertion position and history: it is the "Structurally
    Invariant disabled" variant used in the paper's breakdown analysis
    (Figure 19).
    """

    def __init__(self, items_per_chunk: int = 32):
        if items_per_chunk <= 0:
            raise ValueError("items_per_chunk must be positive")
        self.items_per_chunk = items_per_chunk

    def boundaries(self, items: Sequence[bytes]) -> List[int]:
        cuts = []
        for i in range(self.items_per_chunk - 1, len(items) - 1, self.items_per_chunk):
            cuts.append(i)
        return cuts

    def chunk(self, items: Sequence[bytes]) -> List[Chunk]:
        items = list(items)
        chunks = []
        for start in range(0, len(items), self.items_per_chunk):
            segment = items[start : start + self.items_per_chunk]
            chunks.append(Chunk(segment, sum(len(s) for s in segment)))
        return chunks


def chunk_items(items: Iterable[bytes],
                chunker: Optional[ContentDefinedChunker] = None) -> List[Chunk]:
    """Chunk ``items`` with ``chunker`` (default content-defined chunker)."""
    chunker = chunker or ContentDefinedChunker()
    return chunker.chunk(list(items))
