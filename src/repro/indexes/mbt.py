"""Merkle Bucket Tree (MBT) — Section 3.4.2 of the paper.

A Merkle tree built over a *fixed* array of hash buckets, as used by
Hyperledger Fabric 0.6's state bucket tree.  Records are assigned to one
of ``capacity`` buckets by hashing the key; the records inside a bucket
are kept in ascending key order; internal nodes of fan-out ``fanout``
carry the cryptographic hashes of their children.  Both ``capacity`` and
``fanout`` are fixed at construction and never change over the index's
life cycle.

Consequences evaluated by the paper:

* the number of tree nodes is constant, so writes never create *more*
  nodes as data grows — but bucket (leaf) size grows linearly with N,
  making lookups O(log_m B + log2 (N/B)) and updates O(log_m B + N/B),
  which eventually dominates (Figures 6 and 13);
* position of data is fully determined by the key hash, so two versions
  are trivially comparable bucket-by-bucket — diff is the cheapest of all
  candidates (Figure 8);
* large, ever-growing leaf nodes mean small edits rewrite a lot of bytes,
  which caps the achievable deduplication ratio (Figure 17).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.errors import InvalidParameterError
from repro.core.proof import MerkleProof
from repro.encoding.binary import (
    decode_bytes,
    decode_kv_pairs,
    encode_bytes,
    encode_kv_pairs,
)
from repro.hashing.digest import Digest
from repro.indexes.base import MerkleIndex
from repro.storage.store import NodeStore

_TAG_BUCKET = b"b"
_TAG_INTERNAL = b"i"


class MerkleBucketTree(MerkleIndex):
    """The MBT candidate: a Merkle tree over a fixed set of hash buckets.

    Parameters
    ----------
    store:
        The content-addressed node store.
    capacity:
        Number of hash buckets at the bottom level (the paper's ``B``).
    fanout:
        Number of children per internal node (the paper's ``m``).
    """

    name = "MBT"

    def __init__(self, store: NodeStore, capacity: int = 1024, fanout: int = 4):
        super().__init__(store)
        if capacity <= 0:
            raise InvalidParameterError("capacity must be positive")
        if fanout < 2:
            raise InvalidParameterError("fanout must be at least 2")
        self.capacity = capacity
        self.fanout = fanout
        #: Per-level node counts, bottom (bucket level) first.
        self._level_widths = self._compute_level_widths(capacity, fanout)
        #: Lazily-stored digest of the canonical empty bucket node.
        self._empty_bucket: Optional[Digest] = None
        #: Instrumentation for the Figure 13 breakdown: time spent loading
        #: nodes vs scanning bucket contents is accounted by callers using
        #: these counters of traversed internal nodes and scanned entries.
        self.buckets_scanned_entries = 0
        self.internal_nodes_traversed = 0

    @staticmethod
    def _compute_level_widths(capacity: int, fanout: int) -> List[int]:
        widths = [capacity]
        while widths[-1] > 1:
            widths.append((widths[-1] + fanout - 1) // fanout)
        return widths

    @property
    def levels(self) -> int:
        """Number of tree levels including the bucket level."""
        return len(self._level_widths)

    # ------------------------------------------------------------------
    # Key → bucket assignment
    # ------------------------------------------------------------------

    def bucket_of(self, key: bytes) -> int:
        """The bucket index a key hashes to (stable across the index lifetime)."""
        digest = hashlib.blake2b(key, digest_size=8).digest()
        return int.from_bytes(digest, "big") % self.capacity

    # ------------------------------------------------------------------
    # Node serialization
    # ------------------------------------------------------------------

    def _serialize_bucket(self, entries: Sequence[Tuple[bytes, bytes]]) -> bytes:
        return _TAG_BUCKET + encode_kv_pairs(entries)

    def _deserialize_bucket(self, data: bytes) -> List[Tuple[bytes, bytes]]:
        if data[:1] != _TAG_BUCKET:
            raise ValueError("not a bucket node")
        entries, _ = decode_kv_pairs(data, 1)
        return entries

    def _serialize_internal(self, children: Sequence[Digest]) -> bytes:
        out = bytearray(_TAG_INTERNAL)
        for child in children:
            out.extend(encode_bytes(child.raw))
        return bytes(out)

    def _deserialize_internal(self, data: bytes) -> List[Digest]:
        if data[:1] != _TAG_INTERNAL:
            raise ValueError("not an internal node")
        children: List[Digest] = []
        offset = 1
        while offset < len(data):
            raw, offset = decode_bytes(data, offset)
            children.append(Digest(raw))
        return children

    def _child_digests(self, node_bytes: bytes) -> List[Digest]:
        if node_bytes[:1] == _TAG_INTERNAL:
            return self._deserialize_internal(node_bytes)
        return []

    # ------------------------------------------------------------------
    # Tree construction
    # ------------------------------------------------------------------

    def _build_from_buckets(self, bucket_digests: List[Digest]) -> Digest:
        """Roll the bucket digests up into internal levels; return the root."""
        level = bucket_digests
        while len(level) > 1:
            next_level: List[Digest] = []
            for start in range(0, len(level), self.fanout):
                children = level[start : start + self.fanout]
                next_level.append(self._put_node(self._serialize_internal(children)))
            level = next_level
        return level[0]

    def _empty_bucket_digest(self) -> Digest:
        """Digest of the canonical empty bucket (computed once, never stored).

        Hash-only on purpose: read paths (``iterate_diff`` against the
        empty version) need the digest for comparison and must not write
        to the store.  Write paths that actually reference the empty
        bucket store it through :meth:`_ensure_empty_bucket`.
        """
        if self._empty_bucket is None:
            self._empty_bucket = self.store.hash_function.hash(
                self._serialize_bucket([]))
        return self._empty_bucket

    def _ensure_empty_bucket(self) -> Digest:
        """The empty bucket's digest with its node guaranteed stored."""
        digest = self._empty_bucket_digest()
        self._put_node(self._serialize_bucket([]))
        return digest

    def _empty_bucket_digests(self) -> List[Digest]:
        return [self._empty_bucket_digest()] * self.capacity

    def _bucket_path_indices(self, bucket_index: int) -> List[int]:
        """Child indexes along the root→bucket path (the paper's reverse simulation)."""
        # Positions of the bucket's ancestors at each level, bottom-up.
        positions = [bucket_index]
        for width in self._level_widths[1:]:
            positions.append(positions[-1] // self.fanout)
        # Convert to child-slot indexes top-down.
        indices: List[int] = []
        for level in range(len(positions) - 1, 0, -1):
            parent_position = positions[level]
            child_position = positions[level - 1]
            indices.append(child_position - parent_position * self.fanout)
        return indices

    def _bucket_digests(self, root: Digest) -> List[Digest]:
        """Collect the digest of every bucket, left to right."""
        level = [root]
        for _ in range(self.levels - 1):
            next_level: List[Digest] = []
            for digest in level:
                next_level.extend(self._deserialize_internal(self._get_node(digest)))
            level = next_level
        return level

    # ------------------------------------------------------------------
    # Bulk build (bottom-up)
    # ------------------------------------------------------------------

    def bulk_build(self, records: Sequence[Tuple[bytes, bytes]]) -> Optional[Digest]:
        """Build a fresh version holding exactly ``records`` in O(N + B).

        One global sort keeps every bucket's entries ordered as they are
        appended (bucket assignment preserves relative key order), so each
        bucket is serialized and hashed exactly once and the internal
        levels are rolled up once — no per-bucket merge against the empty
        tree.  Bucket serialization is byte-identical to the incremental
        write path, so the root matches incremental insertion exactly.
        """
        if not records:
            return None
        capacity = self.capacity
        bucket_of = self.bucket_of  # polymorphic: subclasses re-routing keys
        buckets: List[Optional[List[Tuple[bytes, bytes]]]] = [None] * capacity
        for pair in sorted(records):
            position = bucket_of(pair[0])
            bucket = buckets[position]
            if bucket is None:
                buckets[position] = [pair]
            else:
                bucket.append(pair)
        empty = self._ensure_empty_bucket()
        bucket_digests = [
            empty if entries is None
            else self._put_node(self._serialize_bucket(entries))
            for entries in buckets
        ]
        return self._build_from_buckets(bucket_digests)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def _descend_to_bucket(self, root: Digest, bucket_index: int) -> Tuple[List[bytes], List[Tuple[bytes, bytes]]]:
        """Walk root→bucket; return (node bytes along path, bucket entries)."""
        path_nodes: List[bytes] = []
        digest = root
        for child_index in self._bucket_path_indices(bucket_index):
            node_bytes = self._get_node(digest)
            path_nodes.append(node_bytes)
            children = self._deserialize_internal(node_bytes)
            digest = children[child_index]
            self.internal_nodes_traversed += 1
        bucket_bytes = self._get_node(digest)
        path_nodes.append(bucket_bytes)
        entries = self._deserialize_bucket(bucket_bytes)
        return path_nodes, entries

    @staticmethod
    def _binary_search(entries: List[Tuple[bytes, bytes]], key: bytes) -> int:
        """Index of ``key`` in sorted ``entries`` or -1 when absent."""
        low, high = 0, len(entries) - 1
        while low <= high:
            mid = (low + high) // 2
            mid_key = entries[mid][0]
            if mid_key == key:
                return mid
            if mid_key < key:
                low = mid + 1
            else:
                high = mid - 1
        return -1

    def lookup(self, root: Optional[Digest], key: bytes) -> Optional[bytes]:
        if root is None:
            return None
        _, entries = self._descend_to_bucket(root, self.bucket_of(key))
        self.buckets_scanned_entries += len(entries)
        position = self._binary_search(entries, key)
        return entries[position][1] if position >= 0 else None

    def lookup_depth(self, root: Optional[Digest], key: bytes) -> int:
        if root is None:
            return 0
        return self.levels

    # ------------------------------------------------------------------
    # Write
    # ------------------------------------------------------------------

    def write(
        self,
        root: Optional[Digest],
        puts: Mapping[bytes, bytes],
        removes: Iterable[bytes] = (),
    ) -> Optional[Digest]:
        return self.write_counted(root, puts, removes)[0]

    def write_counted(
        self,
        root: Optional[Digest],
        puts: Mapping[bytes, bytes],
        removes: Iterable[bytes] = (),
    ) -> Tuple[Optional[Digest], Optional[int]]:
        # Remove-wins: puts are merged into each bucket first and removes
        # popped afterwards, so a key on both sides of the batch ends up
        # absent (the contract documented on SIRIIndex.write).
        removes = list(removes)
        if root is None:
            # Fresh version: one global sort, zero node reads (the generic
            # path below would read and merge every affected bucket).
            removed = set(removes)
            if removed:
                records = [(k, v) for k, v in puts.items() if k not in removed]
            else:
                records = list(puts.items())
            return self.bulk_build(records), len(records)

        # Group the changes per bucket so each affected bucket is rewritten once.
        bucket_puts: Dict[int, Dict[bytes, bytes]] = {}
        for key, value in puts.items():
            bucket_puts.setdefault(self.bucket_of(key), {})[key] = value
        bucket_removes: Dict[int, Set[bytes]] = {}
        for key in removes:
            bucket_removes.setdefault(self.bucket_of(key), set()).add(key)

        bucket_digests = self._bucket_digests(root)

        delta = 0
        affected = set(bucket_puts) | set(bucket_removes)
        for bucket_index in affected:
            old_entries = self._deserialize_bucket(self._get_node(bucket_digests[bucket_index]))
            merged: Dict[bytes, bytes] = dict(old_entries)
            merged.update(bucket_puts.get(bucket_index, {}))
            for key in bucket_removes.get(bucket_index, ()):  # absent keys are ignored
                merged.pop(key, None)
            new_entries = sorted(merged.items())
            delta += len(new_entries) - len(old_entries)
            bucket_digests[bucket_index] = self._put_node(self._serialize_bucket(new_entries))

        if removes:
            # Deleting the last record must return the canonical empty root
            # (None), not a materialized tree of empty buckets — otherwise
            # the same (empty) content would have two different roots
            # depending on how it was reached, breaking the structural
            # invariance the other SIRI candidates uphold.  Only removes
            # can empty the tree, so put-only batches skip the check.
            empty = self._empty_bucket_digest()
            if all(digest == empty for digest in bucket_digests):
                return None, delta

        return self._build_from_buckets(bucket_digests), delta

    # ------------------------------------------------------------------
    # Iteration, diff, proofs
    # ------------------------------------------------------------------

    def iterate(self, root: Optional[Digest]) -> Iterator[Tuple[bytes, bytes]]:
        if root is None:
            return
        items: List[Tuple[bytes, bytes]] = []
        for digest in self._bucket_digests(root):
            items.extend(self._deserialize_bucket(self._get_node(digest)))
        items.sort(key=lambda pair: pair[0])
        yield from items

    def iterate_diff(self, left_root: Optional[Digest], right_root: Optional[Digest]):
        """Bucket-aligned pruned diff.

        Buckets occupy fixed positions, so two versions are compared by
        walking the two bucket digest arrays in lockstep and loading only
        the buckets whose digests differ — the "simplest diff logic" the
        paper credits for MBT's best-in-class diff performance.
        """
        if left_root == right_root:
            return
        left_buckets = self._bucket_digests(left_root) if left_root else self._empty_bucket_digests()
        right_buckets = self._bucket_digests(right_root) if right_root else self._empty_bucket_digests()
        # Buckets matching the empty digest decode to no entries without a
        # store read: diffing against the empty version must stay read-only
        # (the empty bucket node may never have been stored).
        empty = self._empty_bucket_digest()
        for left_digest, right_digest in zip(left_buckets, right_buckets):
            if left_digest == right_digest:
                continue
            left_entries = ({} if left_digest == empty else
                            dict(self._deserialize_bucket(self._get_node(left_digest))))
            right_entries = ({} if right_digest == empty else
                             dict(self._deserialize_bucket(self._get_node(right_digest))))
            for key in sorted(set(left_entries) | set(right_entries)):
                left_value = left_entries.get(key)
                right_value = right_entries.get(key)
                if left_value != right_value:
                    yield key, left_value, right_value

    def prove(self, root: Optional[Digest], key: bytes) -> MerkleProof:
        if root is None:
            return self._build_proof(key, None, [])
        path_nodes, entries = self._descend_to_bucket(root, self.bucket_of(key))
        position = self._binary_search(entries, key)
        value = entries[position][1] if position >= 0 else None
        return self._build_proof(key, value, path_nodes)

    def proof_binding_check(self, leaf_bytes: bytes, key: bytes, value: Optional[bytes]) -> bool:
        """Structural binding check: the bucket must contain the exact pair."""
        entries = self._deserialize_bucket(leaf_bytes)
        position = self._binary_search(entries, key)
        if value is None:
            return position < 0
        return position >= 0 and entries[position][1] == value

    def height(self, root: Optional[Digest]) -> int:
        if root is None:
            return 0
        return self.levels

    def count(self, root: Optional[Digest]) -> int:
        if root is None:
            return 0
        total = 0
        for digest in self._bucket_digests(root):
            total += len(self._deserialize_bucket(self._get_node(digest)))
        return total
