"""Pattern-Oriented-Split Tree (POS-Tree) — Section 3.4.3 of the paper.

A probabilistically balanced Merkle search tree whose node boundaries are
chosen by *content-defined chunking*: the ordered record sequence at the
bottom, and the ``(split key, child hash)`` entry sequences of the internal
layers, are split wherever a fingerprint of the local content matches a
boundary pattern.  Because boundaries depend only on content:

* the structure is **Structurally Invariant** — the same record set always
  produces the same tree, byte for byte, regardless of update order;
* an update perturbs only the chunks containing the modified records plus,
  occasionally, one neighbouring chunk (boundary re-synchronization), so
  versions share the overwhelming majority of their pages;
* internal layers avoid re-hashing a sliding window by matching the
  boundary pattern directly against the child hashes they store — the
  optimization that distinguishes POS-Tree from Noms' Prolly Tree
  (Figure 22).

Writes are applied batched and bottom-up: the affected leaf regions are
re-chunked (cascading right until chunking re-synchronizes with an
existing boundary) and the internal layers are rebuilt from the leaf
descriptor list.  Unchanged nodes re-serialize to identical bytes and are
therefore deduplicated by the content-addressed store rather than
rewritten.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.errors import InvalidParameterError
from repro.encoding.binary import encode_bytes, encode_uvarint
from repro.hashing.chunker import BoundaryPattern, ContentDefinedChunker
from repro.hashing.digest import Digest
from repro.indexes.ranged import Entry, RangedMerkleSearchTree
from repro.storage.store import NodeStore


class POSTree(RangedMerkleSearchTree):
    """The POS-Tree candidate: content-defined-chunked Merkle search tree.

    Parameters
    ----------
    store:
        The content-addressed node store.
    target_node_size:
        Desired average node size in bytes (the paper tunes all indexes to
        roughly 1 KB; Table 3 sweeps 512–4096).  Together with
        ``estimated_entry_size`` it determines the expected number of
        entries per leaf chunk.
    estimated_entry_size:
        Expected serialized size of one record; used only to derive the
        boundary pattern for leaf chunks.
    leaf_pattern_bits / internal_pattern_bits:
        Explicit boundary-pattern widths (expected entries per chunk is
        ``2**bits``).  When provided they override the size-based
        derivation.
    leaf_fingerprint_mode:
        How leaf-entry fingerprints are computed (see
        :class:`~repro.hashing.chunker.ContentDefinedChunker`).  The
        default hashes each serialized record once; ``"window"`` emulates
        the byte-wise sliding window of the original description (slower).
    """

    name = "POS-Tree"

    def __init__(
        self,
        store: NodeStore,
        target_node_size: int = 1024,
        estimated_entry_size: int = 256,
        leaf_pattern_bits: Optional[int] = None,
        internal_pattern_bits: Optional[int] = None,
        leaf_fingerprint_mode: str = "item_hash",
    ):
        super().__init__(store)
        if target_node_size <= 0:
            raise InvalidParameterError("target_node_size must be positive")
        if estimated_entry_size <= 0:
            raise InvalidParameterError("estimated_entry_size must be positive")
        self.target_node_size = target_node_size
        self.estimated_entry_size = estimated_entry_size

        if leaf_pattern_bits is None:
            expected_entries = max(2, target_node_size // estimated_entry_size)
            leaf_pattern_bits = max(1, expected_entries.bit_length() - 1)
        if internal_pattern_bits is None:
            # Internal entries are roughly split_key + 32-byte digest; aim
            # for the same target node size.
            expected_entries = max(2, target_node_size // 48)
            internal_pattern_bits = max(1, expected_entries.bit_length() - 1)
        self.leaf_pattern_bits = leaf_pattern_bits
        self.internal_pattern_bits = internal_pattern_bits

        # Boundary decisions must be a pure function of the single entry so
        # that incremental re-chunking converges to exactly the same chunk
        # sequence a from-scratch build would produce (min_items=1, no cap).
        self._leaf_chunker = ContentDefinedChunker(
            pattern=BoundaryPattern(bits=leaf_pattern_bits),
            min_items=1,
            max_items=None,
            fingerprint_mode=leaf_fingerprint_mode,
        )
        self._internal_chunker = ContentDefinedChunker(
            pattern=BoundaryPattern(bits=internal_pattern_bits),
            min_items=1,
            max_items=None,
            fingerprint_mode="digest_tail",
        )
        #: Record-count delta accumulated by _rewrite_leaf_level for the
        #: write in flight; read back by write_counted().
        self._rewrite_delta = 0

    # ------------------------------------------------------------------
    # Boundary predicates
    # ------------------------------------------------------------------

    def _leaf_entry_is_boundary(self, key: bytes, value: bytes) -> bool:
        item = self._leaf_item_bytes(key, value)
        if self._leaf_chunker.fingerprint_mode == "item_hash":
            fingerprint = self._leaf_chunker._item_fingerprint_hash(item)
        elif self._leaf_chunker.fingerprint_mode == "digest_tail":
            fingerprint = self._leaf_chunker._item_fingerprint_direct(item)
        else:
            roller = self._leaf_chunker.rolling_hash_factory(self._leaf_chunker.window_size)
            fingerprint = roller.digest_window(item)
        return self._leaf_chunker.pattern.matches(fingerprint)

    def _internal_entry_is_boundary(self, split_key: bytes, digest: Digest) -> bool:
        item = self._internal_item_bytes(split_key, digest)
        fingerprint = self._internal_chunker._item_fingerprint_direct(item)
        return self._internal_chunker.pattern.matches(fingerprint)

    # ------------------------------------------------------------------
    # Chunking of record runs / entry runs
    # ------------------------------------------------------------------

    def _chunk_records_closed(
        self, records: Sequence[Tuple[bytes, bytes]]
    ) -> Tuple[List[List[Tuple[bytes, bytes]]], List[Tuple[bytes, bytes]]]:
        """Split records into closed chunks plus an open (unterminated) tail.

        A chunk is closed when its last record matches the boundary
        pattern; records after the last boundary form the open tail, which
        either absorbs the next old leaf (during incremental writes) or
        becomes the final leaf of the level.
        """
        closed: List[List[Tuple[bytes, bytes]]] = []
        current: List[Tuple[bytes, bytes]] = []
        for key, value in records:
            current.append((key, value))
            if self._leaf_entry_is_boundary(key, value):
                closed.append(current)
                current = []
        return closed, current

    def _chunk_entries_closed(
        self, entries: Sequence[Entry]
    ) -> Tuple[List[List[Entry]], List[Entry]]:
        """Same as :meth:`_chunk_records_closed` but for internal entries."""
        closed: List[List[Entry]] = []
        current: List[Entry] = []
        for split_key, digest in entries:
            current.append((split_key, digest))
            if self._internal_entry_is_boundary(split_key, digest):
                closed.append(current)
                current = []
        return closed, current

    # ------------------------------------------------------------------
    # Build / write
    # ------------------------------------------------------------------

    def _store_leaf(self, records: Sequence[Tuple[bytes, bytes]]) -> Entry:
        digest = self._put_node(self._serialize_leaf(records))
        return records[-1][0], digest

    def _build_leaf_level(self, records: Sequence[Tuple[bytes, bytes]]) -> List[Entry]:
        """Chunk a full sorted record list into leaves (bottom-up build)."""
        closed, tail = self._chunk_records_closed(records)
        if tail:
            closed.append(tail)
        return [self._store_leaf(chunk) for chunk in closed]

    def _build_internal_levels(self, leaf_entries: List[Entry]) -> Digest:
        """Roll leaf descriptors up into internal levels; return the root digest."""
        entries = leaf_entries
        level = 1
        while len(entries) > 1:
            closed, tail = self._chunk_entries_closed(entries)
            if tail:
                closed.append(tail)
            if len(closed) >= len(entries):
                # Degenerate case: every entry is a boundary, so chunking
                # makes no progress.  Collapse everything into one node to
                # guarantee termination (still a pure function of content).
                closed = [list(entries)]
            next_entries: List[Entry] = []
            for chunk in closed:
                digest = self._put_node(self._serialize_internal(level, chunk))
                next_entries.append((chunk[-1][0], digest))
            entries = next_entries
            level += 1
        return entries[0][1]

    # ------------------------------------------------------------------
    # Bulk build (bottom-up, fused boundary detection + serialization)
    # ------------------------------------------------------------------

    def bulk_build(self, records: Sequence[Tuple[bytes, bytes]]) -> Optional[Digest]:
        """Build a fresh version holding exactly ``records`` in O(N).

        Sorts once and emits leaves and internal levels bottom-up.  On the
        default chunker configuration the leaf pass is *fused*: each
        record's canonical item bytes are encoded once and reused for both
        the boundary fingerprint and the leaf serialization (the generic
        path encodes every record twice).  The chunk sequence and node
        bytes are identical to the incremental write path, so the root is
        byte-identical to incremental insertion.
        """
        if not records:
            return None
        leaf_entries = self._bulk_leaf_level(sorted(records))
        if len(leaf_entries) == 1:
            return leaf_entries[0][1]
        return self._build_internal_levels(leaf_entries)

    def _bulk_leaf_level(self, records: Sequence[Tuple[bytes, bytes]]) -> List[Entry]:
        """Chunk + serialize + store the sorted ``records`` in one pass."""
        chunker = self._leaf_chunker
        if (type(self)._chunk_records_closed is not POSTree._chunk_records_closed
                or type(self)._leaf_entry_is_boundary is not POSTree._leaf_entry_is_boundary
                or chunker.fingerprint_mode not in ("item_hash", "digest_tail")
                or chunker.min_items != 1
                or chunker.max_items is not None):
            # A subclass customized chunking (the ablation variants, Noms'
            # windowed fingerprints): defer to the generic builder so its
            # overrides keep deciding every boundary.
            return self._build_leaf_level(records)
        blake2b = hashlib.blake2b
        encode = encode_bytes
        header = self._leaf_header()
        item_hash = chunker.fingerprint_mode == "item_hash"
        mask = chunker.pattern.mask
        want = chunker.pattern.value
        put_node = self._put_node
        entries: List[Entry] = []
        parts: List[bytes] = []
        for key, value in records:
            item = encode(key) + encode(value)
            parts.append(item)
            if item_hash:
                fingerprint = int.from_bytes(
                    blake2b(item, digest_size=8).digest(), "big")
            else:
                fingerprint = int.from_bytes(
                    item[-8:] if len(item) >= 8 else item, "big")
            if fingerprint & mask == want:
                data = header + encode_uvarint(len(parts)) + b"".join(parts)
                entries.append((key, put_node(data)))
                parts = []
        if parts:
            data = header + encode_uvarint(len(parts)) + b"".join(parts)
            entries.append((records[-1][0], put_node(data)))
        return entries

    def write(
        self,
        root: Optional[Digest],
        puts: Mapping[bytes, bytes],
        removes: Iterable[bytes] = (),
    ) -> Optional[Digest]:
        return self.write_counted(root, puts, removes)[0]

    def write_counted(
        self,
        root: Optional[Digest],
        puts: Mapping[bytes, bytes],
        removes: Iterable[bytes] = (),
    ) -> Tuple[Optional[Digest], Optional[int]]:
        removes = list(removes)
        if not puts and not removes:
            return root, 0

        if root is None:
            # Remove-wins: a key in both puts and removes stays out of the
            # new version (the seed path silently let the put win here,
            # diverging from every other index and from the non-empty
            # branch below).
            removed = set(removes)
            if removed:
                records = [(k, v) for k, v in puts.items() if k not in removed]
            else:
                records = list(puts.items())
            return self.bulk_build(records), len(records)

        old_leaves = self._leaf_descriptors(root)
        self._rewrite_delta = 0
        new_leaves = self._rewrite_leaf_level(old_leaves, puts, removes)
        delta = self._rewrite_delta
        if not new_leaves:
            return None, delta
        if len(new_leaves) == 1:
            return new_leaves[0][1], delta
        return self._build_internal_levels(new_leaves), delta

    def _rewrite_leaf_level(
        self,
        old_leaves: List[Entry],
        puts: Mapping[bytes, bytes],
        removes: Iterable[bytes],
    ) -> List[Entry]:
        """Rewrite the affected leaves, reusing untouched ones verbatim.

        Changes are routed to the leaf whose key range covers them; each
        affected region is merged, re-chunked, and the re-chunking cascades
        rightwards (absorbing the next old leaf) until it closes exactly on
        an existing boundary — the algorithm described in Section 3.4.3.
        """
        if not old_leaves:
            records = self._apply_changes([], puts, removes)
            self._rewrite_delta += len(records)
            return self._build_leaf_level(records) if records else []

        split_keys = [split for split, _ in old_leaves]

        per_leaf_puts: Dict[int, Dict[bytes, bytes]] = {}
        per_leaf_removes: Dict[int, Set[bytes]] = {}
        for key, value in puts.items():
            position = bisect.bisect_left(split_keys, key)
            if position >= len(old_leaves):
                position = len(old_leaves) - 1
            per_leaf_puts.setdefault(position, {})[key] = value
        for key in removes:
            position = bisect.bisect_left(split_keys, key)
            if position >= len(old_leaves):
                position = len(old_leaves) - 1
            per_leaf_removes.setdefault(position, set()).add(key)

        affected = set(per_leaf_puts) | set(per_leaf_removes)

        new_leaves: List[Entry] = []
        pending: List[Tuple[bytes, bytes]] = []
        for position, (split_key, digest) in enumerate(old_leaves):
            if position not in affected and not pending:
                new_leaves.append((split_key, digest))
                continue
            records = self._load_leaf(digest)
            before = len(records)
            records = self._apply_changes(
                records,
                per_leaf_puts.get(position, {}),
                per_leaf_removes.get(position, ()),
            )
            self._rewrite_delta += len(records) - before
            records = pending + records
            closed, pending = self._chunk_records_closed(records)
            for chunk in closed:
                new_leaves.append(self._store_leaf(chunk))
        if pending:
            new_leaves.append(self._store_leaf(pending))
        return new_leaves
