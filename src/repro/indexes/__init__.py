"""Concrete index structures evaluated by the paper.

* :mod:`repro.indexes.mpt` — Merkle Patricia Trie (Ethereum-style radix
  trie with path compaction).
* :mod:`repro.indexes.mbt` — Merkle Bucket Tree (Hyperledger Fabric
  0.6-style Merkle tree over hash buckets).
* :mod:`repro.indexes.pos_tree` — Pattern-Oriented-Split Tree (Forkbase's
  content-defined-chunked Merkle search tree).
* :mod:`repro.indexes.mvmbt` — Multi-Version Merkle B+-Tree, the paper's
  non-SIRI baseline.
* :mod:`repro.indexes.ablation` — POS-Tree variants with individual SIRI
  properties disabled (Section 5.5).

All of them implement :class:`repro.core.interfaces.SIRIIndex` and are
interchangeable from the caller's perspective — including behind the
sharded service layer (:class:`repro.service.VersionedKVService`), which
accepts any of these classes as its per-shard index factory.
"""

from repro.indexes.base import MerkleIndex
from repro.indexes.mpt import MerklePatriciaTrie
from repro.indexes.mbt import MerkleBucketTree
from repro.indexes.pos_tree import POSTree
from repro.indexes.mvmbt import MVMBTree
from repro.indexes.ablation import (
    NonRecursivelyIdenticalPOSTree,
    NonStructurallyInvariantPOSTree,
)

#: The four index candidates in the paper's canonical order, used by the
#: tests and benchmarks to parameterize scenarios over every structure.
ALL_INDEX_CLASSES = (MerklePatriciaTrie, MerkleBucketTree, POSTree, MVMBTree)

__all__ = [
    "MerkleIndex",
    "MerklePatriciaTrie",
    "MerkleBucketTree",
    "POSTree",
    "MVMBTree",
    "NonStructurallyInvariantPOSTree",
    "NonRecursivelyIdenticalPOSTree",
    "ALL_INDEX_CLASSES",
]
