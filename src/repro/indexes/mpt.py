"""Merkle Patricia Trie (MPT) — Section 3.4.1 of the paper.

A radix trie over the *nibbles* (4-bit halves) of the key bytes, with path
compaction and cryptographic node hashing, as used by Ethereum for its
state and transaction tries.  Node types:

* **leaf** — a compacted remaining path plus the value.
* **extension** — a compacted shared path plus one child reference.
* **branch** — a 16-slot child array (one per nibble value) plus an
  optional value for keys that terminate at this node.
* the **null** node is represented by the absence of a digest (``None``).

The trie is *structurally invariant*: the shape depends only on the set of
keys stored (each node's position is determined by key bytes), never on
the order of insertions or deletions.  Combined with node-level
copy-on-write this yields high page sharing across versions, at the cost
of tall trees when keys are long (lookup cost O(L), Section 4.1.1).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.proof import MerkleProof
from repro.encoding.binary import decode_bytes, encode_bytes
from repro.encoding.nibbles import (
    bytes_to_nibbles,
    common_prefix_length,
    hex_prefix_decode,
    hex_prefix_encode,
    nibbles_to_bytes,
)
from repro.hashing.digest import Digest
from repro.indexes.base import MerkleIndex
from repro.storage.store import NodeStore

# Node kind tags used in the canonical serialization.
_TAG_LEAF = b"L"
_TAG_EXTENSION = b"E"
_TAG_BRANCH = b"B"

_BRANCH_WIDTH = 16


class _Leaf:
    """In-memory form of a leaf node: remaining path nibbles plus value."""

    __slots__ = ("path", "value")

    def __init__(self, path: Sequence[int], value: bytes):
        self.path = list(path)
        self.value = value


class _Extension:
    """In-memory form of an extension node: shared path plus one child."""

    __slots__ = ("path", "child")

    def __init__(self, path: Sequence[int], child: Digest):
        self.path = list(path)
        self.child = child


class _Branch:
    """In-memory form of a branch node: 16 child slots plus optional value."""

    __slots__ = ("children", "value")

    def __init__(self, children: Sequence[Optional[Digest]], value: Optional[bytes]):
        self.children = list(children)
        self.value = value


class MerklePatriciaTrie(MerkleIndex):
    """The MPT candidate: radix trie with path compaction and Merkle hashing."""

    name = "MPT"

    def __init__(self, store: NodeStore):
        super().__init__(store)
        #: Set by the terminal _insert_* cases when the last insertion
        #: created a brand-new record (rather than replacing a value);
        #: write_counted() reads it back per key.  Writes on one index
        #: instance are serialized by the owning shard's lock.
        self._insert_created_record = False

    # ------------------------------------------------------------------
    # Node serialization
    # ------------------------------------------------------------------

    def _serialize(self, node) -> bytes:
        if isinstance(node, _Leaf):
            return (
                _TAG_LEAF
                + encode_bytes(hex_prefix_encode(node.path, is_leaf=True))
                + encode_bytes(node.value)
            )
        if isinstance(node, _Extension):
            return (
                _TAG_EXTENSION
                + encode_bytes(hex_prefix_encode(node.path, is_leaf=False))
                + encode_bytes(node.child.raw)
            )
        if isinstance(node, _Branch):
            out = bytearray(_TAG_BRANCH)
            for child in node.children:
                out.extend(encode_bytes(child.raw if child is not None else b""))
            if node.value is None:
                out.extend(b"\x00")
                out.extend(encode_bytes(b""))
            else:
                out.extend(b"\x01")
                out.extend(encode_bytes(node.value))
            return bytes(out)
        raise TypeError(f"unknown MPT node type: {type(node).__name__}")

    def _deserialize(self, data: bytes):
        tag = data[:1]
        if tag == _TAG_LEAF:
            encoded_path, offset = decode_bytes(data, 1)
            value, _ = decode_bytes(data, offset)
            path, is_leaf = hex_prefix_decode(encoded_path)
            if not is_leaf:
                raise ValueError("leaf node carries an extension-encoded path")
            return _Leaf(path, value)
        if tag == _TAG_EXTENSION:
            encoded_path, offset = decode_bytes(data, 1)
            child_raw, _ = decode_bytes(data, offset)
            path, is_leaf = hex_prefix_decode(encoded_path)
            if is_leaf:
                raise ValueError("extension node carries a leaf-encoded path")
            return _Extension(path, Digest(child_raw))
        if tag == _TAG_BRANCH:
            offset = 1
            children: List[Optional[Digest]] = []
            for _ in range(_BRANCH_WIDTH):
                raw, offset = decode_bytes(data, offset)
                children.append(Digest(raw) if raw else None)
            has_value = data[offset]
            offset += 1
            value_bytes, _ = decode_bytes(data, offset)
            value = value_bytes if has_value else None
            return _Branch(children, value)
        raise ValueError(f"unknown MPT node tag: {tag!r}")

    def _store_node(self, node) -> Digest:
        return self._put_node(self._serialize(node))

    def _load_node(self, digest: Digest):
        return self._deserialize(self._get_node(digest))

    def _child_digests(self, node_bytes: bytes) -> List[Digest]:
        node = self._deserialize(node_bytes)
        if isinstance(node, _Extension):
            return [node.child]
        if isinstance(node, _Branch):
            return [child for child in node.children if child is not None]
        return []

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def lookup(self, root: Optional[Digest], key: bytes) -> Optional[bytes]:
        if root is None:
            return None
        nibbles = bytes_to_nibbles(key)
        digest: Optional[Digest] = root
        while digest is not None:
            node = self._load_node(digest)
            if isinstance(node, _Leaf):
                return node.value if node.path == nibbles else None
            if isinstance(node, _Extension):
                length = len(node.path)
                if nibbles[:length] != node.path:
                    return None
                nibbles = nibbles[length:]
                digest = node.child
                continue
            # Branch node.
            if not nibbles:
                return node.value
            digest = node.children[nibbles[0]]
            nibbles = nibbles[1:]
        return None

    def lookup_depth(self, root: Optional[Digest], key: bytes) -> int:
        if root is None:
            return 0
        nibbles = bytes_to_nibbles(key)
        digest: Optional[Digest] = root
        depth = 0
        while digest is not None:
            depth += 1
            node = self._load_node(digest)
            if isinstance(node, _Leaf):
                return depth
            if isinstance(node, _Extension):
                length = len(node.path)
                if nibbles[:length] != node.path:
                    return depth
                nibbles = nibbles[length:]
                digest = node.child
                continue
            if not nibbles:
                return depth
            digest = node.children[nibbles[0]]
            nibbles = nibbles[1:]
        return depth

    # ------------------------------------------------------------------
    # Bulk build (bottom-up construction of the canonical trie)
    # ------------------------------------------------------------------

    def bulk_build(self, records: Sequence[Tuple[bytes, bytes]]) -> Optional[Digest]:
        """Build the canonical trie over ``records`` bottom-up in O(N).

        The records are sorted once (byte order equals nibble order) and
        the trie is emitted recursively: every maximal shared prefix
        becomes one extension, every divergence one branch, every record
        one leaf — so each node is serialized and hashed exactly once,
        instead of once per insertion along its path.  The trie is
        structurally invariant, so the root is byte-identical to the one
        incremental insertion produces (the differential tests pin this).
        """
        if not records:
            return None
        items = sorted((bytes_to_nibbles(key), value) for key, value in records)
        return self._build_subtree_bulk(items, 0, len(items), 0)

    def _build_subtree_bulk(self, items: List[Tuple[List[int], bytes]],
                            lo: int, hi: int, depth: int) -> Digest:
        """Emit the subtree over ``items[lo:hi]``, which share ``depth`` nibbles."""
        if hi - lo == 1:
            nibbles, value = items[lo]
            return self._store_node(_Leaf(nibbles[depth:], value))
        # The longest common prefix of a sorted run is that of its extremes.
        first = items[lo][0]
        last = items[hi - 1][0]
        limit = min(len(first), len(last))
        cut = depth
        while cut < limit and first[cut] == last[cut]:
            cut += 1
        if cut > depth:
            child = self._build_branch_bulk(items, lo, hi, cut)
            return self._store_node(_Extension(first[depth:cut], child))
        return self._build_branch_bulk(items, lo, hi, depth)

    def _build_branch_bulk(self, items: List[Tuple[List[int], bytes]],
                           lo: int, hi: int, depth: int) -> Digest:
        """Emit the branch whose ``items[lo:hi]`` diverge at nibble ``depth``."""
        children: List[Optional[Digest]] = [None] * _BRANCH_WIDTH
        value: Optional[bytes] = None
        i = lo
        if len(items[lo][0]) == depth:
            # Keys are unique, so at most one key terminates exactly here
            # (and it sorts first in the run).
            value = items[lo][1]
            i += 1
        while i < hi:
            nibble = items[i][0][depth]
            j = i + 1
            while j < hi and items[j][0][depth] == nibble:
                j += 1
            children[nibble] = self._build_subtree_bulk(items, i, j, depth + 1)
            i = j
        return self._store_node(_Branch(children, value))

    # ------------------------------------------------------------------
    # Write (batched puts and removes)
    # ------------------------------------------------------------------

    def write(
        self,
        root: Optional[Digest],
        puts: Mapping[bytes, bytes],
        removes: Iterable[bytes] = (),
    ) -> Optional[Digest]:
        return self.write_counted(root, puts, removes)[0]

    def write_counted(
        self,
        root: Optional[Digest],
        puts: Mapping[bytes, bytes],
        removes: Iterable[bytes] = (),
    ) -> Tuple[Optional[Digest], Optional[int]]:
        if root is None:
            # Fresh version: build bottom-up instead of inserting per key.
            # Remove-wins: a key in both puts and removes stays out.
            removed = set(removes)
            if removed:
                records = [(k, v) for k, v in puts.items() if k not in removed]
            else:
                records = list(puts.items())
            return self.bulk_build(records), len(records)
        delta = 0
        new_root: Optional[Digest] = root
        for key, value in puts.items():
            self._insert_created_record = False
            new_root = self._insert_at(new_root, bytes_to_nibbles(key), value)
            if self._insert_created_record:
                delta += 1
        # Removes are applied after puts, making remove-wins explicit for
        # keys that appear on both sides of the batch.  An absent key
        # leaves the root digest untouched, so the comparison below counts
        # exactly the removes that hit a record.
        for key in removes:
            before = new_root
            new_root = self._delete_at(new_root, bytes_to_nibbles(key))
            if new_root != before:
                delta -= 1
        return new_root, delta

    def _insert_at(self, digest: Optional[Digest], nibbles: List[int], value: bytes) -> Digest:
        if digest is None:
            self._insert_created_record = True
            return self._store_node(_Leaf(nibbles, value))

        node = self._load_node(digest)

        if isinstance(node, _Leaf):
            return self._insert_into_leaf(node, nibbles, value)
        if isinstance(node, _Extension):
            return self._insert_into_extension(node, nibbles, value)
        return self._insert_into_branch(node, nibbles, value)

    def _insert_into_leaf(self, node: _Leaf, nibbles: List[int], value: bytes) -> Digest:
        common = common_prefix_length(node.path, nibbles)
        if common == len(node.path) == len(nibbles):
            # Same key: replace the value.
            return self._store_node(_Leaf(node.path, value))

        self._insert_created_record = True
        children: List[Optional[Digest]] = [None] * _BRANCH_WIDTH
        branch_value: Optional[bytes] = None

        existing_rest = node.path[common:]
        new_rest = nibbles[common:]
        if existing_rest:
            children[existing_rest[0]] = self._store_node(_Leaf(existing_rest[1:], node.value))
        else:
            branch_value = node.value
        if new_rest:
            children[new_rest[0]] = self._store_node(_Leaf(new_rest[1:], value))
        else:
            branch_value = value

        branch_digest = self._store_node(_Branch(children, branch_value))
        if common:
            return self._store_node(_Extension(nibbles[:common], branch_digest))
        return branch_digest

    def _insert_into_extension(self, node: _Extension, nibbles: List[int], value: bytes) -> Digest:
        common = common_prefix_length(node.path, nibbles)
        if common == len(node.path):
            new_child = self._insert_at(node.child, nibbles[common:], value)
            return self._store_node(_Extension(node.path, new_child))

        self._insert_created_record = True
        children: List[Optional[Digest]] = [None] * _BRANCH_WIDTH
        branch_value: Optional[bytes] = None

        existing_rest = node.path[common:]
        new_rest = nibbles[common:]
        # The existing subtree hangs below the first diverging nibble of the
        # original extension path.
        if len(existing_rest) == 1:
            children[existing_rest[0]] = node.child
        else:
            children[existing_rest[0]] = self._store_node(
                _Extension(existing_rest[1:], node.child)
            )
        if new_rest:
            children[new_rest[0]] = self._store_node(_Leaf(new_rest[1:], value))
        else:
            branch_value = value

        branch_digest = self._store_node(_Branch(children, branch_value))
        if common:
            return self._store_node(_Extension(nibbles[:common], branch_digest))
        return branch_digest

    def _insert_into_branch(self, node: _Branch, nibbles: List[int], value: bytes) -> Digest:
        if not nibbles:
            if node.value is None:
                self._insert_created_record = True
            return self._store_node(_Branch(node.children, value))
        index = nibbles[0]
        new_child = self._insert_at(node.children[index], nibbles[1:], value)
        children = list(node.children)
        children[index] = new_child
        return self._store_node(_Branch(children, node.value))

    # ------------------------------------------------------------------
    # Delete (with canonical collapsing, preserving structural invariance)
    # ------------------------------------------------------------------

    def _delete_at(self, digest: Optional[Digest], nibbles: List[int]) -> Optional[Digest]:
        if digest is None:
            return None

        node = self._load_node(digest)

        if isinstance(node, _Leaf):
            if node.path == nibbles:
                return None
            return digest

        if isinstance(node, _Extension):
            length = len(node.path)
            if nibbles[:length] != node.path:
                return digest
            new_child = self._delete_at(node.child, nibbles[length:])
            if new_child == node.child:
                return digest
            if new_child is None:
                return None
            return self._collapse_extension(node.path, new_child)

        # Branch node.
        children = list(node.children)
        value = node.value
        if not nibbles:
            if value is None:
                return digest
            value = None
        else:
            index = nibbles[0]
            child = children[index]
            if child is None:
                return digest
            new_child = self._delete_at(child, nibbles[1:])
            if new_child == child:
                return digest
            children[index] = new_child
        return self._collapse_branch(children, value)

    def _collapse_extension(self, prefix: List[int], child_digest: Digest) -> Digest:
        """Merge an extension with its (possibly compacted) new child."""
        child = self._load_node(child_digest)
        if isinstance(child, _Leaf):
            return self._store_node(_Leaf(list(prefix) + child.path, child.value))
        if isinstance(child, _Extension):
            return self._store_node(_Extension(list(prefix) + child.path, child.child))
        return self._store_node(_Extension(list(prefix), child_digest))

    def _collapse_branch(
        self, children: List[Optional[Digest]], value: Optional[bytes]
    ) -> Optional[Digest]:
        """Re-canonicalize a branch node after one of its slots changed."""
        present = [(i, child) for i, child in enumerate(children) if child is not None]
        if not present:
            if value is None:
                return None
            return self._store_node(_Leaf([], value))
        if len(present) == 1 and value is None:
            index, child_digest = present[0]
            return self._collapse_extension([index], child_digest)
        return self._store_node(_Branch(children, value))

    # ------------------------------------------------------------------
    # Iteration, diff and proofs
    # ------------------------------------------------------------------

    def iterate(self, root: Optional[Digest]) -> Iterator[Tuple[bytes, bytes]]:
        yield from self._iterate_subtree(root, [])

    def _iterate_subtree(self, digest: Optional[Digest], prefix: List[int]):
        if digest is None:
            return
        node = self._load_node(digest)
        if isinstance(node, _Leaf):
            yield nibbles_to_bytes(prefix + node.path), node.value
            return
        if isinstance(node, _Extension):
            yield from self._iterate_subtree(node.child, prefix + node.path)
            return
        if node.value is not None:
            yield nibbles_to_bytes(prefix), node.value
        for index, child in enumerate(node.children):
            if child is not None:
                yield from self._iterate_subtree(child, prefix + [index])

    def iterate_diff(self, left_root: Optional[Digest], right_root: Optional[Digest]):
        """Yield ``(key, left_value, right_value)`` for keys differing between roots.

        Identical subtrees are pruned by digest comparison, so the cost is
        proportional to the amount of difference (plus the path down to
        it), not to the total size — the behaviour Figure 8 measures.
        """
        yield from self._diff_subtrees(left_root, right_root, [])

    def _diff_subtrees(self, left: Optional[Digest], right: Optional[Digest], prefix: List[int]):
        if left == right:
            return
        if left is None:
            for key, value in self._iterate_subtree(right, prefix):
                yield key, None, value
            return
        if right is None:
            for key, value in self._iterate_subtree(left, prefix):
                yield key, value, None
            return

        left_node = self._load_node(left)
        right_node = self._load_node(right)
        if isinstance(left_node, _Branch) and isinstance(right_node, _Branch):
            if left_node.value != right_node.value:
                yield nibbles_to_bytes(prefix), left_node.value, right_node.value
            for index in range(_BRANCH_WIDTH):
                yield from self._diff_subtrees(
                    left_node.children[index], right_node.children[index], prefix + [index]
                )
            return

        # Mixed node kinds: fall back to merge-joining the two subtrees'
        # ordered record streams.
        left_items = dict(self._iterate_subtree(left, prefix))
        right_items = dict(self._iterate_subtree(right, prefix))
        for key in sorted(set(left_items) | set(right_items)):
            left_value = left_items.get(key)
            right_value = right_items.get(key)
            if left_value != right_value:
                yield key, left_value, right_value

    def prove(self, root: Optional[Digest], key: bytes) -> MerkleProof:
        path_nodes: List[bytes] = []
        value: Optional[bytes] = None
        nibbles = bytes_to_nibbles(key)
        digest: Optional[Digest] = root
        while digest is not None:
            node_bytes = self._get_node(digest)
            path_nodes.append(node_bytes)
            node = self._deserialize(node_bytes)
            if isinstance(node, _Leaf):
                value = node.value if node.path == nibbles else None
                break
            if isinstance(node, _Extension):
                length = len(node.path)
                if nibbles[:length] != node.path:
                    break
                nibbles = nibbles[length:]
                digest = node.child
                continue
            if not nibbles:
                value = node.value
                break
            digest = node.children[nibbles[0]]
            nibbles = nibbles[1:]
        return self._build_proof(key, value, path_nodes)

    def proof_binding_check(self, leaf_bytes: bytes, key: bytes, value: Optional[bytes]) -> bool:
        """Structural binding check for MPT proofs.

        The bottom node of a membership proof is either a leaf whose
        compacted path is a suffix of the key's nibbles and whose value
        matches, or a branch node whose value slot matches (for keys that
        terminate at a branch).
        """
        if value is None:
            return True
        node = self._deserialize(leaf_bytes)
        nibbles = bytes_to_nibbles(key)
        if isinstance(node, _Leaf):
            suffix = nibbles[len(nibbles) - len(node.path) :] if node.path else []
            return node.value == value and suffix == node.path
        if isinstance(node, _Branch):
            return node.value == value
        return False

    def height(self, root: Optional[Digest]) -> int:
        return self._subtree_height(root)

    def _subtree_height(self, digest: Optional[Digest]) -> int:
        if digest is None:
            return 0
        node = self._load_node(digest)
        if isinstance(node, _Leaf):
            return 1
        if isinstance(node, _Extension):
            return 1 + self._subtree_height(node.child)
        return 1 + max(
            (self._subtree_height(child) for child in node.children if child is not None),
            default=0,
        )
