"""Shared machinery for the Merkle index implementations.

Every candidate index follows the same storage discipline:

* a node is an immutable value object with a *canonical* byte
  serialization,
* the node's identity is the digest of those bytes,
* nodes reference children by digest (never by memory pointer),
* writes never mutate stored nodes — they write new nodes for the
  modified paths and leave everything else shared (copy-on-write).

:class:`MerkleIndex` factors the store plumbing (put/get node bytes,
reachable-set walks, proof assembly) out of the concrete structures so
each of them only implements its own node formats and traversal logic.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.errors import NodeNotFoundError
from repro.core.interfaces import SIRIIndex
from repro.core.proof import MerkleProof, ProofStep
from repro.hashing.digest import Digest
from repro.storage.store import NodeStore


class MerkleIndex(SIRIIndex):
    """Base class for content-addressed, copy-on-write Merkle indexes."""

    def __init__(self, store: NodeStore):
        super().__init__(store)
        #: Number of node (page) writes issued by this index instance;
        #: includes writes deduplicated by the store.  Used by benchmarks.
        self.nodes_written = 0
        #: Number of node reads issued by this index instance.
        self.nodes_read = 0

    # -- store plumbing ---------------------------------------------------

    def _put_node(self, data: bytes) -> Digest:
        """Store one canonical node serialization and return its digest."""
        self.nodes_written += 1
        return self.store.put(data)

    def _get_node(self, digest: Digest) -> bytes:
        """Load one node's canonical bytes from the store."""
        self.nodes_read += 1
        return self.store.get(digest)

    # -- structure-specific hook -------------------------------------------

    def _child_digests(self, node_bytes: bytes) -> List[Digest]:
        """Extract the digests of the children referenced by a node.

        Used by the generic reachability walk; concrete indexes override
        this according to their node formats.
        """
        raise NotImplementedError

    # -- generic reachability ------------------------------------------------

    def node_digests(self, root: Optional[Digest]) -> Set[Digest]:
        """All node digests reachable from ``root`` (the page set P(I))."""
        reachable: Set[Digest] = set()
        if root is None:
            return reachable
        stack = [root]
        while stack:
            digest = stack.pop()
            if digest in reachable:
                continue
            reachable.add(digest)
            node_bytes = self._get_node(digest)
            stack.extend(self._child_digests(node_bytes))
        return reachable

    # -- proof assembly --------------------------------------------------------

    def _build_proof(
        self,
        key: bytes,
        value: Optional[bytes],
        path_nodes: Sequence[bytes],
    ) -> MerkleProof:
        """Assemble a :class:`MerkleProof` from the node bytes along a path."""
        steps = [ProofStep(node_bytes, level) for level, node_bytes in enumerate(path_nodes)]
        return MerkleProof(
            key=key,
            value=value,
            steps=steps,
            index_name=self.name,
            hash_function=self.store.hash_function,
            binding_check=self.proof_binding_check,
        )

    def proof_binding_check(self, leaf_bytes: bytes, key: bytes, value: Optional[bytes]) -> bool:
        """Check that a proof's bottom node binds ``key`` to ``value``.

        The default is conservative (value bytes must appear in the node);
        concrete indexes override it with an exact structural check.
        """
        if value is None:
            return True
        return value in leaf_bytes

    # -- reporting --------------------------------------------------------------

    def reset_counters(self) -> None:
        """Zero the per-instance node read/write counters."""
        self.nodes_written = 0
        self.nodes_read = 0

    def describe(self) -> str:
        """One-line description used in benchmark reports."""
        return self.name

    def __repr__(self) -> str:
        return f"{type(self).__name__}(store={type(self.store).__name__})"
