"""POS-Tree ablation variants (Section 5.5 of the paper).

The breakdown analysis isolates the contribution of each SIRI property by
disabling it in POS-Tree and re-measuring the deduplication and node
sharing ratios:

* :class:`NonStructurallyInvariantPOSTree` — Figure 19.  Chunk boundaries
  are no longer a pure function of content: a forced split is taken after
  a fixed number of entries when no (rare) pattern match occurs, so the
  chunking depends on where a rewrite region started — i.e. on the order
  in which updates arrived.  Identical record sets reached through
  different histories stop sharing pages.
* :class:`NonRecursivelyIdenticalPOSTree` — Figure 20.  Every write
  rebuilds the *entire* tree with a fresh per-version salt mixed into the
  node serialization, so no node is ever shared between versions (the
  paper's "forcibly copying all nodes in the tree").  Deduplication and
  node sharing collapse to zero.

The Universally Reusable property is common to every copy-on-write Merkle
index and is therefore not ablated, matching the paper.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.interfaces import SIRIIndex
from repro.encoding.binary import encode_uvarint
from repro.hashing.digest import Digest
from repro.indexes.pos_tree import POSTree
from repro.storage.store import NodeStore


class NonStructurallyInvariantPOSTree(POSTree):
    """POS-Tree with the Structurally Invariant property disabled.

    The boundary pattern is made ``extra_pattern_bits`` harder to match, and
    a chunk is force-closed once it reaches ``forced_split_items`` entries.
    Forced splits are positional rather than content-defined, so the node
    layout depends on the update history.
    """

    name = "POS-Tree (non-SI)"

    def __init__(
        self,
        store: NodeStore,
        target_node_size: int = 1024,
        estimated_entry_size: int = 256,
        extra_pattern_bits: int = 3,
        forced_split_items: Optional[int] = None,
        **kwargs,
    ):
        super().__init__(
            store,
            target_node_size=target_node_size,
            estimated_entry_size=estimated_entry_size,
            **kwargs,
        )
        # Make genuine pattern matches rarer so forced splits dominate.
        self.leaf_pattern_bits += extra_pattern_bits
        self._leaf_chunker.pattern.bits += extra_pattern_bits
        self._leaf_chunker.pattern.mask = (1 << self._leaf_chunker.pattern.bits) - 1
        self._leaf_chunker.pattern.value = self._leaf_chunker.pattern.mask
        if forced_split_items is None:
            forced_split_items = max(2, target_node_size // estimated_entry_size)
        self.forced_split_items = forced_split_items

    def _chunk_records_closed(
        self, records: Sequence[Tuple[bytes, bytes]]
    ) -> Tuple[List[List[Tuple[bytes, bytes]]], List[Tuple[bytes, bytes]]]:
        closed: List[List[Tuple[bytes, bytes]]] = []
        current: List[Tuple[bytes, bytes]] = []
        for key, value in records:
            current.append((key, value))
            if self._leaf_entry_is_boundary(key, value) or len(current) >= self.forced_split_items:
                closed.append(current)
                current = []
        if current:
            # Force-close the tail instead of letting re-chunking cascade into
            # the next node.  Boundaries therefore depend on *where* a rewrite
            # region started (i.e. on update history), not purely on content —
            # which is exactly the Structurally Invariant property being
            # disabled.
            closed.append(current)
        return closed, []


class NonRecursivelyIdenticalPOSTree(POSTree):
    """POS-Tree with the Recursively Identical property disabled.

    Each write produces a version whose every node carries a fresh salt, so
    the new version shares no page with any previous version — the paper's
    "copy all nodes" configuration.  The record-level behaviour (lookups,
    iteration, proofs) is unchanged.
    """

    name = "POS-Tree (non-RI)"

    def __init__(self, store: NodeStore, **kwargs):
        super().__init__(store, **kwargs)
        self._version_counter = 0

    def bulk_build(self, records: Sequence[Tuple[bytes, bytes]]) -> Optional[Digest]:
        # Every version must carry a fresh salt, including the first one:
        # restore the SIRIIndex default (route through write(), which bumps
        # the version counter) instead of inheriting POS-Tree's salt-free
        # bottom-up builder.
        return SIRIIndex.bulk_build(self, records)

    def write_counted(
        self,
        root: Optional[Digest],
        puts: Mapping[bytes, bytes],
        removes: Iterable[bytes] = (),
    ) -> Tuple[Optional[Digest], Optional[int]]:
        # Likewise: POS-Tree's counted write would bypass the full salted
        # rebuild this ablation is about; the default funnels through
        # write() and only counts the fully-determined empty-root case.
        return SIRIIndex.write_counted(self, root, puts, removes)

    def write(
        self,
        root: Optional[Digest],
        puts: Mapping[bytes, bytes],
        removes: Iterable[bytes] = (),
    ) -> Optional[Digest]:
        removes = list(removes)
        if not puts and not removes:
            return root

        # Materialize the full record set of the previous version, apply the
        # batch, and rebuild everything under a fresh version salt.
        records = dict(self.iterate(root)) if root is not None else {}
        records.update(puts)
        for key in removes:
            records.pop(key, None)
        if not records:
            return None

        self._version_counter += 1
        self._node_salt = b"version:" + encode_uvarint(self._version_counter)
        try:
            leaf_entries = self._build_leaf_level(sorted(records.items()))
            if len(leaf_entries) == 1:
                return leaf_entries[0][1]
            return self._build_internal_levels(leaf_entries)
        finally:
            self._node_salt = b""
