"""Multi-Version Merkle B+-Tree (MVMB+-Tree) — the paper's baseline (Section 5.2).

An immutable B+-tree with tamper evidence: child pointers are replaced by
the cryptographic hashes of the children, and every update copies the
nodes along the modified path (node-level copy-on-write), so each version
is identified by its root hash and old versions remain readable.

The structure is *not* a SIRI instance: node boundaries are determined by
the usual capacity-and-split rules, so the final shape depends on the
order in which keys were inserted (Figure 2 of the paper).  Two instances
holding identical data can therefore have disjoint page sets, which is
exactly the deduplication weakness the paper contrasts against the SIRI
candidates.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.errors import InvalidParameterError
from repro.hashing.digest import Digest
from repro.indexes.ranged import Entry, RangedMerkleSearchTree
from repro.storage.store import NodeStore


class MVMBTree(RangedMerkleSearchTree):
    """The baseline: an immutable, Merkle-ized B+-tree with copy-on-write.

    Parameters
    ----------
    store:
        The content-addressed node store.
    leaf_capacity:
        Maximum number of records per leaf before it splits.
    internal_capacity:
        Maximum number of child entries per internal node before it splits.
    """

    name = "MVMB+-Tree"

    def __init__(self, store: NodeStore, leaf_capacity: int = 8, internal_capacity: int = 24):
        super().__init__(store)
        if leaf_capacity < 2 or internal_capacity < 2:
            raise InvalidParameterError("node capacities must be at least 2")
        self.leaf_capacity = leaf_capacity
        self.internal_capacity = internal_capacity

    # ------------------------------------------------------------------
    # Write path: per-key top-down insertion with node splits
    # ------------------------------------------------------------------

    def write(
        self,
        root: Optional[Digest],
        puts: Mapping[bytes, bytes],
        removes: Iterable[bytes] = (),
    ) -> Optional[Digest]:
        new_root = root
        for key, value in puts.items():
            new_root = self._insert_key(new_root, key, value)
        for key in removes:
            new_root = self._remove_key(new_root, key)
        return new_root

    # -- insertion ---------------------------------------------------------

    def _insert_key(self, root: Optional[Digest], key: bytes, value: bytes) -> Digest:
        if root is None:
            _, digest = self._store_leaf([(key, value)])
            return digest
        new_entries = self._insert_into(root, key, value)
        if len(new_entries) == 1:
            return new_entries[0][1]
        # The root split: grow the tree by one level.
        level = self._node_level(new_entries[0][1]) + 1
        return self._put_node(self._serialize_internal(level, new_entries))

    def _node_level(self, digest: Digest) -> int:
        """Level of a node: 0 for leaves, >= 1 for internal nodes."""
        node_bytes = self._get_node(digest)
        if self._is_leaf_bytes(node_bytes):
            return 0
        level, _ = self._deserialize_internal(node_bytes)
        return level

    def _store_leaf(self, records: Sequence[Tuple[bytes, bytes]]) -> Entry:
        digest = self._put_node(self._serialize_leaf(records))
        return records[-1][0], digest

    def _insert_into(self, digest: Digest, key: bytes, value: bytes) -> List[Entry]:
        """Insert into the subtree at ``digest``; return 1 or 2 replacement entries."""
        node_bytes = self._get_node(digest)

        if self._is_leaf_bytes(node_bytes):
            records = self._deserialize_leaf(node_bytes)
            merged = dict(records)
            merged[key] = value
            records = sorted(merged.items())
            if len(records) <= self.leaf_capacity:
                return [self._store_leaf(records)]
            middle = len(records) // 2
            return [self._store_leaf(records[:middle]), self._store_leaf(records[middle:])]

        level, entries = self._deserialize_internal(node_bytes)
        position = self._child_position(entries, key)
        _, child = entries[position]
        replacement = self._insert_into(child, key, value)
        entries = list(entries[:position]) + replacement + list(entries[position + 1 :])
        if len(entries) <= self.internal_capacity:
            return [self._store_internal(level, entries)]
        middle = len(entries) // 2
        return [
            self._store_internal(level, entries[:middle]),
            self._store_internal(level, entries[middle:]),
        ]

    def _store_internal(self, level: int, entries: Sequence[Entry]) -> Entry:
        digest = self._put_node(self._serialize_internal(level, entries))
        return entries[-1][0], digest

    # -- removal -------------------------------------------------------------

    def _remove_key(self, root: Optional[Digest], key: bytes) -> Optional[Digest]:
        if root is None:
            return None
        replacement = self._remove_from(root, key)
        if replacement is None:
            return None
        split_key, digest = replacement
        # Collapse a root that degenerated to a single child chain.
        node_bytes = self._get_node(digest)
        while not self._is_leaf_bytes(node_bytes):
            _, entries = self._deserialize_internal(node_bytes)
            if len(entries) > 1:
                break
            digest = entries[0][1]
            node_bytes = self._get_node(digest)
        return digest

    def _remove_from(self, digest: Digest, key: bytes) -> Optional[Entry]:
        """Remove ``key`` from the subtree; return its replacement entry or None.

        Underflowed nodes are not rebalanced (sufficient for the baseline's
        role in the evaluation); empty nodes are removed from their parent.
        """
        node_bytes = self._get_node(digest)

        if self._is_leaf_bytes(node_bytes):
            records = self._deserialize_leaf(node_bytes)
            filtered = [(k, v) for k, v in records if k != key]
            if len(filtered) == len(records):
                return records[-1][0], digest
            if not filtered:
                return None
            return self._store_leaf(filtered)

        level, entries = self._deserialize_internal(node_bytes)
        position = self._child_position(entries, key)
        _, child = entries[position]
        replacement = self._remove_from(child, key)
        if replacement == entries[position]:
            return entries[-1][0], digest
        new_entries = list(entries[:position])
        if replacement is not None:
            new_entries.append(replacement)
        new_entries.extend(entries[position + 1 :])
        if not new_entries:
            return None
        return self._store_internal(level, new_entries)
