"""Shared machinery for range-partitioned Merkle search trees.

POS-Tree and the MVMB+-Tree baseline share the same *logical* layout: an
ordered bottom layer of (key, value) records grouped into leaf nodes, and
internal layers whose entries are ``(split_key, child_digest)`` pairs where
``split_key`` is the maximum key stored under the child.  They differ only
in *how node boundaries are chosen* (content-defined chunking vs fixed
capacity with splits) and in how writes are applied (batched bottom-up
rebuild of affected regions vs per-key top-down insertion).

:class:`RangedMerkleSearchTree` implements everything that depends only on
the layout — node serialization, lookup, ordered iteration, pruned diff,
proofs, heights — so the two concrete structures only implement their
write paths.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.proof import MerkleProof
from repro.encoding.binary import (
    decode_bytes,
    decode_kv_pairs,
    decode_uvarint,
    encode_bytes,
    encode_kv_pairs,
    encode_uvarint,
)
from repro.hashing.digest import Digest
from repro.indexes.base import MerkleIndex

_TAG_LEAF = b"l"
_TAG_INTERNAL = b"n"

#: A leaf descriptor or internal entry: (split key = max key below, digest).
Entry = Tuple[bytes, Digest]


class RangedMerkleSearchTree(MerkleIndex):
    """Base class for POS-Tree and MVMB+-Tree (range-partitioned Merkle trees)."""

    #: Optional extra bytes mixed into every node serialization.  The
    #: non-Recursively-Identical ablation uses this to force distinct node
    #: identities per version; it is empty for all real structures.
    _node_salt: bytes = b""

    # ------------------------------------------------------------------
    # Node serialization
    # ------------------------------------------------------------------

    def _serialize_leaf(self, entries: Sequence[Tuple[bytes, bytes]]) -> bytes:
        return _TAG_LEAF + encode_bytes(self._node_salt) + encode_kv_pairs(entries)

    def _leaf_header(self) -> bytes:
        """The constant prefix of every leaf serialization (tag + salt).

        Bulk builders assemble leaf bytes as ``header + uvarint(count) +
        the records' concatenated item bytes`` — byte-identical to
        :meth:`_serialize_leaf` but without re-encoding records whose item
        bytes were already produced for boundary detection.
        """
        return _TAG_LEAF + encode_bytes(self._node_salt)

    def _deserialize_leaf(self, data: bytes) -> List[Tuple[bytes, bytes]]:
        if data[:1] != _TAG_LEAF:
            raise ValueError("not a leaf node")
        _, offset = decode_bytes(data, 1)
        entries, _ = decode_kv_pairs(data, offset)
        return entries

    def _serialize_internal(self, level: int, entries: Sequence[Entry]) -> bytes:
        out = bytearray(_TAG_INTERNAL)
        out.extend(encode_bytes(self._node_salt))
        out.extend(encode_uvarint(level))
        out.extend(encode_uvarint(len(entries)))
        for split_key, digest in entries:
            out.extend(encode_bytes(split_key))
            out.extend(encode_bytes(digest.raw))
        return bytes(out)

    def _deserialize_internal(self, data: bytes) -> Tuple[int, List[Entry]]:
        if data[:1] != _TAG_INTERNAL:
            raise ValueError("not an internal node")
        _, offset = decode_bytes(data, 1)
        level, offset = decode_uvarint(data, offset)
        count, offset = decode_uvarint(data, offset)
        entries: List[Entry] = []
        for _ in range(count):
            split_key, offset = decode_bytes(data, offset)
            raw, offset = decode_bytes(data, offset)
            entries.append((split_key, Digest(raw)))
        return level, entries

    def _is_leaf_bytes(self, data: bytes) -> bool:
        return data[:1] == _TAG_LEAF

    def _child_digests(self, node_bytes: bytes) -> List[Digest]:
        if self._is_leaf_bytes(node_bytes):
            return []
        _, entries = self._deserialize_internal(node_bytes)
        return [digest for _, digest in entries]

    # -- entry byte forms used for content-defined chunking ---------------

    @staticmethod
    def _leaf_item_bytes(key: bytes, value: bytes) -> bytes:
        """Canonical byte form of one record, used for boundary detection."""
        return encode_bytes(key) + encode_bytes(value)

    @staticmethod
    def _internal_item_bytes(split_key: bytes, digest: Digest) -> bytes:
        """Canonical byte form of one internal entry (digest last, so its
        uniformly-random tail bytes can serve directly as the boundary
        fingerprint — the POS-Tree internal-layer optimization)."""
        return encode_bytes(split_key) + digest.raw

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------

    @staticmethod
    def _child_position(entries: Sequence[Entry], key: bytes) -> int:
        """Index of the child whose key range covers ``key``.

        Entries carry the maximum key of their subtree, so the covering
        child is the first entry with ``split_key >= key``; keys beyond
        the last split key fall into the last child (which is where an
        insertion of a new maximum would go).
        """
        split_keys = [split for split, _ in entries]
        position = bisect.bisect_left(split_keys, key)
        if position >= len(entries):
            position = len(entries) - 1
        return position

    def lookup(self, root: Optional[Digest], key: bytes) -> Optional[bytes]:
        if root is None:
            return None
        node_bytes = self._get_node(root)
        while not self._is_leaf_bytes(node_bytes):
            _, entries = self._deserialize_internal(node_bytes)
            _, child = entries[self._child_position(entries, key)]
            node_bytes = self._get_node(child)
        entries = self._deserialize_leaf(node_bytes)
        position = self._binary_search(entries, key)
        return entries[position][1] if position >= 0 else None

    @staticmethod
    def _binary_search(entries: Sequence[Tuple[bytes, bytes]], key: bytes) -> int:
        low, high = 0, len(entries) - 1
        while low <= high:
            mid = (low + high) // 2
            mid_key = entries[mid][0]
            if mid_key == key:
                return mid
            if mid_key < key:
                low = mid + 1
            else:
                high = mid - 1
        return -1

    def lookup_depth(self, root: Optional[Digest], key: bytes) -> int:
        if root is None:
            return 0
        depth = 1
        node_bytes = self._get_node(root)
        while not self._is_leaf_bytes(node_bytes):
            _, entries = self._deserialize_internal(node_bytes)
            _, child = entries[self._child_position(entries, key)]
            node_bytes = self._get_node(child)
            depth += 1
        return depth

    def height(self, root: Optional[Digest]) -> int:
        if root is None:
            return 0
        height = 1
        node_bytes = self._get_node(root)
        while not self._is_leaf_bytes(node_bytes):
            _, entries = self._deserialize_internal(node_bytes)
            _, child = entries[0]
            node_bytes = self._get_node(child)
            height += 1
        return height

    # ------------------------------------------------------------------
    # Leaf enumeration, iteration, diff
    # ------------------------------------------------------------------

    def _leaf_descriptors(self, root: Optional[Digest]) -> List[Entry]:
        """Descriptors (split key, digest) of every leaf, left to right.

        Only internal nodes are read — leaf contents stay untouched, which
        keeps batched writes and diffs cheap.
        """
        if root is None:
            return []
        root_bytes = self._get_node(root)
        if self._is_leaf_bytes(root_bytes):
            entries = self._deserialize_leaf(root_bytes)
            split = entries[-1][0] if entries else b""
            return [(split, root)]
        level, entries = self._deserialize_internal(root_bytes)
        current = entries
        while level > 1:
            next_entries: List[Entry] = []
            for _, digest in current:
                child_level, child_entries = self._deserialize_internal(self._get_node(digest))
                next_entries.extend(child_entries)
            current = next_entries
            level -= 1
        return current

    def _load_leaf(self, digest: Digest) -> List[Tuple[bytes, bytes]]:
        return self._deserialize_leaf(self._get_node(digest))

    def iterate(self, root: Optional[Digest]) -> Iterator[Tuple[bytes, bytes]]:
        for _, digest in self._leaf_descriptors(root):
            for key, value in self._load_leaf(digest):
                yield key, value

    def iterate_range(
        self,
        root: Optional[Digest],
        start: Optional[bytes] = None,
        stop: Optional[bytes] = None,
    ) -> Iterator[Tuple[bytes, bytes]]:
        """Split-key-pruned range scan (``start`` inclusive, ``stop`` exclusive).

        Entries carry the maximum key of their subtree and children are
        ordered, so subtree *i* holds exactly the keys in
        ``(split_{i-1}, split_i]``.  At every level a child is skipped
        when its split key is below ``start`` (everything under it is too
        small) or when the preceding sibling's split key is already at or
        past ``stop`` (everything under it is too large).  Only leaves
        overlapping the window are loaded, so a narrow scan over a large
        version costs O(height + matching leaves) instead of O(N).
        """
        if root is None:
            return
        if start is not None and stop is not None and start >= stop:
            return
        level, entries = self._root_frontier(root)
        while True:
            kept: List[Entry] = []
            previous: Optional[bytes] = None
            for split, digest in entries:
                if stop is not None and previous is not None and previous >= stop:
                    break
                if start is not None and split < start:
                    previous = split
                    continue
                kept.append((split, digest))
                previous = split
            if level <= 1:
                entries = kept
                break
            entries = self._expand_frontier(kept)
            level -= 1
        for _, digest in entries:
            for key, value in self._load_leaf(digest):
                if stop is not None and key >= stop:
                    return
                if start is not None and key < start:
                    continue
                yield key, value

    def _root_frontier(self, root: Optional[Digest]) -> Tuple[int, List[Entry]]:
        """``(level, entries)`` of a root: its child descriptors and their level.

        Leaves sit at level 1 (the frontier is the leaf's own descriptor);
        an internal node's entries describe its children at ``level - 1``.
        ``None`` roots report level 0 with no entries.
        """
        if root is None:
            return 0, []
        node_bytes = self._get_node(root)
        if self._is_leaf_bytes(node_bytes):
            entries = self._deserialize_leaf(node_bytes)
            split = entries[-1][0] if entries else b""
            return 1, [(split, root)]
        return self._deserialize_internal(node_bytes)

    def _expand_frontier(self, entries: List[Entry]) -> List[Entry]:
        """Replace internal-node descriptors by their children's (one level down)."""
        expanded: List[Entry] = []
        for _, digest in entries:
            _, child_entries = self._deserialize_internal(self._get_node(digest))
            expanded.extend(child_entries)
        return expanded

    def _diff_leaf_descriptors(self, left_root: Optional[Digest],
                               right_root: Optional[Digest]) -> Tuple[List[Entry], List[Entry]]:
        """Leaf descriptors of both versions' *differing* regions only.

        Both trees are descended in lock step; at every level, subtrees
        whose digests appear on both sides are pruned without being read
        (identical digest ⇒ identical content, and keys are unique, so a
        digest appears at most once per version — dropping the subtree
        removes the *same* records from both streams).  The cost is
        therefore proportional to the changed regions, not the dataset:
        this is what makes diff — and three-way merge on top of it —
        O(δ · height) instead of O(N) (paper Section 4.1.3).
        """
        left_level, left_entries = self._root_frontier(left_root)
        right_level, right_entries = self._root_frontier(right_root)
        # A taller tree descends alone until the frontiers share a level.
        while left_level > max(right_level, 1):
            left_entries = self._expand_frontier(left_entries)
            left_level -= 1
        while right_level > max(left_level, 1):
            right_entries = self._expand_frontier(right_entries)
            right_level -= 1
        # Joint descent with per-level pruning of shared subtrees.
        while left_level > 1:
            shared = ({digest for _, digest in left_entries}
                      & {digest for _, digest in right_entries})
            left_entries = self._expand_frontier(
                [entry for entry in left_entries if entry[1] not in shared])
            right_entries = self._expand_frontier(
                [entry for entry in right_entries if entry[1] not in shared])
            left_level -= 1
            right_level -= 1
        return left_entries, right_entries

    def iterate_diff(self, left_root: Optional[Digest], right_root: Optional[Digest]):
        """Yield ``(key, left_value, right_value)`` for differing keys.

        Subtrees (and leaves) whose digests appear in both versions are
        skipped without being loaded — see :meth:`_diff_leaf_descriptors`.
        The remaining (changed-region) record streams are merge-joined.
        """
        if left_root == right_root:
            return
        left_leaves, right_leaves = self._diff_leaf_descriptors(left_root, right_root)
        shared = {digest for _, digest in left_leaves} & {digest for _, digest in right_leaves}

        def stream(leaves: List[Entry]) -> Iterator[Tuple[bytes, bytes]]:
            for _, digest in leaves:
                if digest in shared:
                    continue
                for key, value in self._load_leaf(digest):
                    yield key, value

        sentinel = object()
        left_iter = stream(left_leaves)
        right_iter = stream(right_leaves)
        left = next(left_iter, sentinel)
        right = next(right_iter, sentinel)
        while left is not sentinel or right is not sentinel:
            if left is sentinel:
                yield right[0], None, right[1]
                right = next(right_iter, sentinel)
            elif right is sentinel:
                yield left[0], left[1], None
                left = next(left_iter, sentinel)
            elif left[0] == right[0]:
                if left[1] != right[1]:
                    yield left[0], left[1], right[1]
                left = next(left_iter, sentinel)
                right = next(right_iter, sentinel)
            elif left[0] < right[0]:
                yield left[0], left[1], None
                left = next(left_iter, sentinel)
            else:
                yield right[0], None, right[1]
                right = next(right_iter, sentinel)

    # ------------------------------------------------------------------
    # Proofs
    # ------------------------------------------------------------------

    def prove(self, root: Optional[Digest], key: bytes) -> MerkleProof:
        if root is None:
            return self._build_proof(key, None, [])
        path_nodes: List[bytes] = []
        node_bytes = self._get_node(root)
        path_nodes.append(node_bytes)
        while not self._is_leaf_bytes(node_bytes):
            _, entries = self._deserialize_internal(node_bytes)
            _, child = entries[self._child_position(entries, key)]
            node_bytes = self._get_node(child)
            path_nodes.append(node_bytes)
        entries = self._deserialize_leaf(node_bytes)
        position = self._binary_search(entries, key)
        value = entries[position][1] if position >= 0 else None
        return self._build_proof(key, value, path_nodes)

    def proof_binding_check(self, leaf_bytes: bytes, key: bytes, value: Optional[bytes]) -> bool:
        """Structural binding check: the leaf must contain the exact pair."""
        if not self._is_leaf_bytes(leaf_bytes):
            return False
        entries = self._deserialize_leaf(leaf_bytes)
        position = self._binary_search(entries, key)
        if value is None:
            return position < 0
        return position >= 0 and entries[position][1] == value

    # ------------------------------------------------------------------
    # Helpers shared by the write paths
    # ------------------------------------------------------------------

    @staticmethod
    def _apply_changes(
        entries: Sequence[Tuple[bytes, bytes]],
        puts: Mapping[bytes, bytes],
        removes: Iterable[bytes],
    ) -> List[Tuple[bytes, bytes]]:
        """Merge a batch of puts/removes into a sorted record list."""
        merged = dict(entries)
        merged.update(puts)
        for key in removes:
            merged.pop(key, None)
        return sorted(merged.items())

    def count(self, root: Optional[Digest]) -> int:
        total = 0
        for _, digest in self._leaf_descriptors(root):
            total += len(self._load_leaf(digest))
        return total
