"""Query layer — secondary-index lookups and incremental view maintenance.

Two claims back the query subsystem, measured over the annotated wiki
workload (author + timestamp headers, long-tailed author skew):

* **Indexed lookup beats scanning.**  ``Branch.lookup`` on the by-author
  secondary index must answer at least **10× faster** than the full-scan
  baseline (scan everything, run the extractor on every value) at 100k
  keys — the index reads only the author's posting range, so the gap
  widens with the dataset.
* **Incremental view maintenance beats recompute.**  A per-author
  revision-count materialized view fed by the change feed must absorb a
  1% update batch for **under 10% of the cost** of recomputing the view
  from a full scan — the feed's diff-driven events are proportional to
  the batch, not the dataset.

Both runs also *prove* the maintained postings byte-identical to a
brute-force rebuild from ``items()``, so the speed numbers are earned by
an index that is actually correct.

The full run writes ``BENCH_query.json`` at the repository root (the
checked-in artifact) and its exit status gates on both bars.  ``--quick``
is the CI smoke configuration: a smaller dataset, JSON under
``BENCH_query_quick.json`` (gitignored), and the correctness asserts are
the gate — at 2k keys the scan baseline costs milliseconds, so the
speed bars are only meaningful (and only enforced) at full scale.

Run directly::

    PYTHONPATH=src python benchmarks/bench_query.py [--quick]
"""

import argparse
import json
import os
import time

from common import report
from repro.analysis.report import format_table
from repro.api import Repository
from repro.query import MaterializedCountView
from repro.workloads.wiki import WikiDatasetGenerator, extract_author

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
NUM_SHARDS = 4
LOOKUP_SPEEDUP_BAR = 10.0
IVM_RATIO_BAR = 0.10
UPDATE_FRACTION = 0.01


def build_dataset(page_count):
    """The annotated wiki dataset: values carry ``author|timestamp|`` headers."""
    generator = WikiDatasetGenerator(page_count=page_count, versions=0, seed=7)
    return generator, generator.initial_annotated_dataset()


def brute_force_triples(branch):
    """Oracle rebuild of the by-author postings from a full primary scan."""
    triples = []
    for key, value in branch.scan():
        for author in extract_author(value):
            triples.append((author, key, value))
    triples.sort()
    return triples


def pick_authors(dataset, count=8):
    """A deterministic sample of authors spread across the popularity ranks.

    The wiki workload draws authors from a long-tailed (Pareto) skew, so
    the head authors each own a double-digit percentage of the database
    — a query for one of those returns so much of the dataset that any
    access method degenerates into result transfer.  Sampling only the
    head (or only the tail) would misrepresent the workload, so we rank
    authors by page count and take one from the middle of each of
    ``count`` equal-width rank buckets: frequent, middling, and rare
    authors all get measured.
    """
    counts = {}
    for value in dataset.values():
        for author in extract_author(value):
            counts[author] = counts.get(author, 0) + 1
    ranked = sorted(counts, key=lambda author: (-counts[author], author))
    stride = len(ranked) / count
    return [ranked[int((bucket + 0.5) * stride)] for bucket in range(count)]


def scan_lookup(branch, author):
    """The baseline a secondary index replaces: scan + extract everything."""
    return [(key, value) for key, value in branch.scan()
            if extract_author(value) == [author]]


def bench_lookup(branch, by_author, authors):
    """Average per-query seconds: indexed lookup vs full-scan baseline."""
    start = time.perf_counter()
    indexed_answers = [branch.lookup(by_author, author) for author in authors]
    indexed_avg = (time.perf_counter() - start) / len(authors)
    start = time.perf_counter()
    scan_answers = [scan_lookup(branch, author) for author in authors]
    scan_avg = (time.perf_counter() - start) / len(authors)
    assert indexed_answers == scan_answers, "index disagrees with scan baseline"
    return indexed_avg, scan_avg


def bench_ivm(repo, branch, generator, page_count):
    """Seconds to absorb a 1% update batch: view refresh vs full recompute."""
    view = MaterializedCountView(repo.subscribe(), extract_author)
    view.refresh()  # replay the load commit; steady state starts here
    update_count = max(1, int(page_count * UPDATE_FRACTION))
    for index in range(update_count):
        branch.put(generator.keys[index], generator.annotated_value(index, 1))
    branch.commit("1% update batch")
    start = time.perf_counter()
    view.refresh()
    incremental_seconds = time.perf_counter() - start
    start = time.perf_counter()
    recomputed = MaterializedCountView.recompute(branch, extract_author)
    recompute_seconds = time.perf_counter() - start
    assert view.counts() == recomputed, "incremental view drifted from recompute"
    return incremental_seconds, recompute_seconds, update_count


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke scale; writes the gitignored "
                             "BENCH_query_quick.json instead")
    args = parser.parse_args(argv)
    page_count = 2_000 if args.quick else 100_000
    suffix = "_quick" if args.quick else ""

    generator, dataset = build_dataset(page_count)
    with Repository.open(num_shards=NUM_SHARDS) as repo:
        by_author = repo.register_index("by_author", extract_author)
        branch = repo.default_branch
        branch.load(dataset, "load wiki")

        # correctness first: maintained postings == brute-force rebuild
        assert branch.range(by_author) == brute_force_triples(branch), \
            "maintained postings differ from brute-force rebuild"

        authors = pick_authors(dataset)
        indexed_avg, scan_avg = bench_lookup(branch, by_author, authors)
        speedup = scan_avg / indexed_avg if indexed_avg > 0 else float("inf")

        incremental_s, recompute_s, update_count = bench_ivm(
            repo, branch, generator, page_count)
        ivm_ratio = (incremental_s / recompute_s if recompute_s > 0 else 0.0)

    lookup_ok = speedup >= LOOKUP_SPEEDUP_BAR
    ivm_ok = ivm_ratio < IVM_RATIO_BAR
    rows = [
        ["indexed lookup (avg)", f"{indexed_avg * 1e3:.3f} ms", ""],
        ["full-scan lookup (avg)", f"{scan_avg * 1e3:.3f} ms", ""],
        ["lookup speedup", f"{speedup:.1f}x",
         "yes" if lookup_ok else "NO"],
        [f"view refresh ({update_count} updates)",
         f"{incremental_s * 1e3:.3f} ms", ""],
        ["view recompute (full scan)", f"{recompute_s * 1e3:.3f} ms", ""],
        ["IVM / recompute", f"{100 * ivm_ratio:.2f}%",
         "yes" if ivm_ok else "NO"],
    ]
    body = format_table(
        [f"Metric ({page_count} keys)", "Value", "Passes bar"], rows)
    report(f"bench_query{suffix}",
           "Query layer: indexed lookup vs scan; IVM vs recompute", body)

    payload = {
        "benchmark": "bench_query",
        "description": "Secondary-index lookup vs full-scan baseline and "
                       "change-feed incremental view maintenance vs full "
                       "recompute over the annotated wiki workload; "
                       "postings verified against a brute-force rebuild "
                       "in the same run",
        "page_count": page_count,
        "num_shards": NUM_SHARDS,
        "lookup": {
            "authors_queried": len(authors),
            "indexed_avg_seconds": indexed_avg,
            "scan_avg_seconds": scan_avg,
            "speedup": speedup,
            "bar": LOOKUP_SPEEDUP_BAR,
            "passes_bar": lookup_ok,
        },
        "ivm": {
            "update_count": update_count,
            "update_fraction": UPDATE_FRACTION,
            "incremental_seconds": incremental_s,
            "recompute_seconds": recompute_s,
            "ratio": ivm_ratio,
            "bar": IVM_RATIO_BAR,
            "passes_bar": ivm_ok,
        },
        "postings_equal_brute_force": True,
        "acceptance_met": lookup_ok and ivm_ok,
    }
    json_path = os.path.join(REPO_ROOT, f"BENCH_query{suffix}.json")
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {json_path}")
    if args.quick:
        # the quick scale is a correctness smoke: the asserts above
        # already enforced index == scan and view == recompute, but at
        # 2k keys the scan baseline is only a few milliseconds, so the
        # speed bars are judged at the full scale only
        return 0
    return 0 if payload["acceptance_met"] else 1


def test_query_bench_quick_smoke():
    """Pytest entry point (every bench script runs under pytest too)."""
    assert main(["--quick"]) == 0


if __name__ == "__main__":
    raise SystemExit(main())
