"""Bulk-ingest throughput: bottom-up builders vs the seed ingest paths.

Every workload in the paper's evaluation starts by ingesting a large
dataset (YCSB load phases, the Wikipedia/Ethereum replays, the Figure 1
dedup corpora).  ISSUE 5 replaces the seed's incremental ingest with
O(N) bottom-up builders (``SIRIIndex.bulk_build``) plus a shard-parallel
service load path.  This benchmark measures, per index type and key
count:

* ``seed from_items`` — the seed implementation of ``from_items``: one
  incremental ``update()`` over the whole dataset (per-key path-copying
  inserts for MPT, a single merge-into-empty-buckets/chunks pass for
  MBT/POS-Tree).  Emulated by seeding the tree with its first record and
  applying the rest through the incremental write path.
* ``seed load phase`` — how the repo's load phases actually ingested at
  the seed: incremental ``update()`` batches of 1 024 records on a
  growing tree (``common.load_in_batches``).
* ``bulk builder`` — the new ``from_items``: sort once, emit leaves and
  internal nodes level by level, each node serialized and hashed exactly
  once.

History independence makes the comparison airtight: the benchmark
*asserts* that all three strategies produce byte-identical roots before
reporting.  The acceptance bar (ISSUE 5) is bulk ≥ 5× the seed
``from_items`` ingest on ≥ 2 of the 3 SIRI index types at 100 k keys.

A second section measures the service-level load path (per-key puts vs
``VersionedKVService.load`` vs ``ServiceExecutor.load`` vs
``Repository.import_data``), asserting equal commit digests.

Run directly (``--quick`` for the CI smoke configuration)::

    PYTHONPATH=src python benchmarks/bench_bulk_load.py [--quick]
"""

import argparse
import time

from common import make_index, report, scaled, throughput
from repro.analysis.report import format_table
from repro.api import Repository
from repro.indexes import POSTree
from repro.service import ServiceExecutor, VersionedKVService

INDEX_NAMES = ["POS-Tree", "MBT", "MPT"]  # the three SIRI families
BATCH_SIZE = 1_024
VALUE_SIZE = 96
NUM_SHARDS = 4


def dataset(count):
    """A deterministic keyed dataset of ``count`` records."""
    return {b"user%010d" % i: (b"v%010d" % i) * (VALUE_SIZE // 11)
            for i in range(count)}


def seed_from_items(index, items):
    """Emulate the seed ``from_items``: one incremental update() batch.

    The seed implementation fed the whole dataset through ``write`` from
    the empty root — per-key inserts for MPT, one batched merge for
    MBT/POS-Tree.  With ``write(None, ...)`` now routed to the bulk
    builders, the same work is reproduced by seeding the tree with its
    first record and pushing the rest through the (unchanged) non-empty
    incremental write path.
    """
    pairs = list(items.items())
    snapshot = index.empty_snapshot().update(dict(pairs[:1]))
    return snapshot.update(dict(pairs[1:]))


def seed_load_phase(index, items, batch_size=BATCH_SIZE):
    """Emulate the seed load phases: incremental update() per batch."""
    pairs = list(items.items())
    snapshot = index.empty_snapshot().update(dict(pairs[:1]))
    for start in range(1, len(pairs), batch_size):
        snapshot = snapshot.update(dict(pairs[start:start + batch_size]))
    return snapshot


def timed(build, *args):
    started = time.perf_counter()
    result = build(*args)
    return result, time.perf_counter() - started


def run_index_comparison(sizes, baseline_limit, suffix=""):
    rows = []
    for count in sizes:
        items = dataset(count)
        for name in INDEX_NAMES:
            bulk_snap, bulk_s = timed(
                lambda: make_index(name, dataset_size=count,
                                   value_size=VALUE_SIZE).from_items(items))
            row = [name, count, round(bulk_s, 3),
                   round(throughput(count, bulk_s))]
            if count <= baseline_limit:
                single_snap, single_s = timed(
                    lambda: seed_from_items(
                        make_index(name, dataset_size=count,
                                   value_size=VALUE_SIZE), items))
                batched_snap, batched_s = timed(
                    lambda: seed_load_phase(
                        make_index(name, dataset_size=count,
                                   value_size=VALUE_SIZE), items))
                # History independence: every strategy must produce the
                # same version, byte for byte.
                assert bulk_snap.root_digest == single_snap.root_digest, (
                    f"{name}: bulk root != seed from_items root")
                assert bulk_snap.root_digest == batched_snap.root_digest, (
                    f"{name}: bulk root != seed load-phase root")
                row += [round(single_s, 3), round(batched_s, 3),
                        f"{single_s / bulk_s:.1f}x",
                        f"{batched_s / bulk_s:.1f}x", "yes"]
            else:
                row += ["-", "-", "-", "-", "-"]
            rows.append(row)
    note = (
        "\nSeedFromItems = the seed's from_items (one incremental update() "
        "over the whole dataset);\nSeedLoadPhase = the seed's load phases "
        "(incremental update() per 1 024-record batch on a growing tree).\n"
        "MBT and POS-Tree already applied a single update() batch-wise at "
        "the seed, so their single-shot\ncolumn measures mostly hashing "
        "floor; the load phases every workload actually ran through are\n"
        "the per-batch column.  Baselines are measured up to 100 k keys; "
        "1 M rows are bulk-only.\n")
    report(f"bulk_load_index{suffix}",
           "Bulk-ingest: bottom-up builders vs seed ingest paths "
           f"(values ~{VALUE_SIZE} B; roots asserted byte-identical)",
           format_table(
               ["Index", "Keys", "BulkSecs", "BulkKeys/s", "SeedFromItemsSecs",
                "SeedLoadPhaseSecs", "VsFromItems", "VsLoadPhase", "RootsEqual"],
               rows) + note)
    return rows


def run_service_comparison(count, suffix=""):
    items = dataset(count)
    rows = []
    digests = {}

    def finish(label, service, seconds, extra=""):
        commit = service.commit("loaded")
        metrics = service.metrics()
        digests[label] = commit.digest
        rows.append([label, count, round(seconds, 3),
                     round(throughput(count, seconds)),
                     metrics.contention.acquisitions, metrics.flushes, extra])

    service = VersionedKVService(POSTree, num_shards=NUM_SHARDS)
    started = time.perf_counter()
    for key, value in items.items():
        service.put(key, value)
    service.flush()
    finish("per-key put loop (seed)", service, time.perf_counter() - started)

    service = VersionedKVService(POSTree, num_shards=NUM_SHARDS)
    started = time.perf_counter()
    service.put_many(items)
    service.flush()
    finish("put_many (fixed)", service, time.perf_counter() - started)

    service = VersionedKVService(POSTree, num_shards=NUM_SHARDS)
    started = time.perf_counter()
    service.load(items)
    finish("service.load", service, time.perf_counter() - started)

    service = VersionedKVService(POSTree, num_shards=NUM_SHARDS)
    with ServiceExecutor(service) as executor:
        started = time.perf_counter()
        executor.load(items)
        seconds = time.perf_counter() - started
    finish(f"executor.load ({NUM_SHARDS} workers)", service, seconds)

    with Repository.open(num_shards=NUM_SHARDS) as repo:
        started = time.perf_counter()
        commit = repo.import_data(items, message="bulk import")
        seconds = time.perf_counter() - started
        digests["repository.import_data"] = commit.digest
        rows.append(["repository.import_data", count, round(seconds, 3),
                     round(throughput(count, seconds)), "-", "-",
                     "1 journalled commit"])

    reference = digests["per-key put loop (seed)"]
    assert all(digest == reference for digest in digests.values()), (
        "service-level load strategies disagreed on the commit digest")
    report(f"bulk_load_service{suffix}",
           f"Service bulk-ingest: {NUM_SHARDS} POS-Tree shards "
           "(commit digests asserted identical across strategies)",
           format_table(
               ["Strategy", "Keys", "Secs", "Keys/s", "LockAcquisitions",
                "ShardFlushes", "Notes"],
               rows))


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke configuration: 10k keys only")
    parser.add_argument("--full", action="store_true",
                        help="additionally run a 1M-key bulk-only row")
    args = parser.parse_args(argv)
    if args.quick:
        # Smoke configuration (CI): small sizes, and results written under
        # *_quick names so the committed full-scale tables stay intact.
        sizes, baseline_limit, service_count = [scaled(10_000)], 100_000, scaled(10_000)
        suffix = "_quick"
    else:
        sizes, baseline_limit, service_count = [10_000, 100_000], 100_000, 100_000
        suffix = ""
        if args.full:
            sizes.append(1_000_000)
    run_index_comparison(sizes, baseline_limit, suffix=suffix)
    run_service_comparison(service_count, suffix=suffix)
    return 0


def test_bulk_ingest_quick_smoke():
    """Pytest entry point (every bench script runs under pytest too)."""
    assert main(["--quick"]) == 0


if __name__ == "__main__":
    raise SystemExit(main())
