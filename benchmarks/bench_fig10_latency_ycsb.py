"""Figure 10 — per-operation latency distributions on YCSB.

The paper plots the distribution of individual read and write latencies
for a 160 000-record dataset under balanced (θ=0) and highly skewed
(θ=0.9) request distributions.

Expected shape (paper): the ranking matches the throughput experiment —
POS-Tree and the baseline are fastest and tightly clustered, MPT is the
slowest with several peaks (different trie depths), MBT reads are fast but
MBT writes fall behind POS-Tree.
"""

import time

import pytest

from common import INDEX_NAMES, make_index, report_table, scaled
from repro.analysis.histogram import LatencyRecorder
from repro.storage.memory import InMemoryNodeStore
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload

RECORD_COUNT = scaled(8_000)
OPERATION_COUNT = scaled(1_500)


def run_panel(write_ratio: float, theta: float):
    workload = YCSBWorkload(YCSBConfig(record_count=RECORD_COUNT,
                                       operation_count=OPERATION_COUNT,
                                       write_ratio=write_ratio, theta=theta, seed=101))
    dataset = workload.initial_dataset()
    operations = list(workload.operations())

    summaries = {}
    for name in INDEX_NAMES:
        index = make_index(name, InMemoryNodeStore(), dataset_size=RECORD_COUNT)
        snapshot = index.from_items(dataset)
        recorder = LatencyRecorder()
        for op in operations:
            if op.is_write:
                start = time.perf_counter()
                snapshot = snapshot.put(op.key, op.value)
                recorder.record(time.perf_counter() - start)
            else:
                start = time.perf_counter()
                snapshot.get(op.key)
                recorder.record(time.perf_counter() - start)
        summaries[name] = recorder.summary()
    return summaries


PANELS = [("read-balanced", 0.0, 0.0), ("read-skewed", 0.0, 0.9),
          ("write-balanced", 1.0, 0.0), ("write-skewed", 1.0, 0.9)]


@pytest.mark.parametrize("panel,write_ratio,theta", PANELS, ids=[p[0] for p in PANELS])
def test_fig10_latency_distribution(benchmark, panel, write_ratio, theta):
    summaries = benchmark.pedantic(run_panel, args=(write_ratio, theta), rounds=1, iterations=1)
    rows = [[name,
             round(summaries[name]["mean"] * 1e6, 1),
             round(summaries[name]["p50"] * 1e6, 1),
             round(summaries[name]["p90"] * 1e6, 1),
             round(summaries[name]["p99"] * 1e6, 1)]
            for name in INDEX_NAMES]
    report_table(f"fig10_latency_{panel}",
                 f"Figure 10 ({panel}): per-operation latency (µs), "
                 f"{RECORD_COUNT} records, {OPERATION_COUNT} operations",
                 ["index", "mean", "p50", "p90", "p99"], rows)

    medians = {name: summaries[name]["p50"] for name in INDEX_NAMES}
    assert all(value > 0 for value in medians.values())
    if write_ratio == 0.0:
        # Paper shape (reads): MBT outperforms every other candidate on the
        # read-only workload (its lookup path is a constant three levels).
        assert medians["MBT"] == min(medians.values())
