"""Branching benchmark: fork cost, merge throughput, concurrent branches.

This benchmark evaluates the repository API (``src/repro/api/``;
[docs/API.md](../docs/API.md)) — the branching model the paper's
motivating systems (ForkBase, Noms) exist to serve.  Three questions:

1. **Fork cost is O(1)** — a fork journals one commit that repeats the
   source head's per-shard roots; no tree node is copied.  We time
   ``Branch.fork`` across a 50× range of dataset sizes and assert the
   cost stays flat (and that the shard stores gain exactly zero bytes).

2. **Merge cost scales with the diff, not the dataset** — a three-way
   merge diffs both heads against the fork point with subtree-digest
   pruning (`core/diff.py`), so doubling the *dataset* should barely
   move the merge time while doubling the *edit count* roughly doubles
   it.  We sweep both axes and report keys-merged-per-second.

3. **Concurrent branches buy real throughput** — YCSB-A over 4 branches
   driven by 4 client threads vs the same total operation count on one
   branch with one thread.  As in ``bench_concurrent_service.py``, the
   stores simulate remote-read round trips with GIL-releasing sleeps
   (the regime ForkBase's system experiments measure); branch isolation
   means the threads overlap their round trips almost perfectly — each
   branch stages, reads and commits against its own immutable roots.
"""

import functools
import threading
import time

from common import report_series, report_table, scaled
from repro.api import Repository
from repro.indexes import POSTree
from repro.storage.memory import InMemoryNodeStore
from repro.storage.metered import MeteredNodeStore
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload

INDEX_FACTORY = functools.partial(POSTree, target_node_size=1024,
                                  estimated_entry_size=272)
NUM_SHARDS = 4

#: Dataset sizes for the fork-cost sweep (50× range).
FORK_SIZES = [scaled(1_000), scaled(10_000), scaled(50_000)]
FORKS_PER_SIZE = 32

#: (dataset size, edits per branch) grid for the merge sweep.
MERGE_SIZES = [scaled(5_000), scaled(20_000)]
MERGE_DELTAS = [100, 400, 1_600]

#: YCSB-A over branches.
YCSB_RECORDS = scaled(3_000)
YCSB_OPERATIONS = scaled(1_200)
BRANCH_COUNTS = [1, 4]
COMMIT_EVERY = 150
GET_RTT_SECONDS = 150e-6


def dataset(size: int):
    # 256-byte values, the paper's YCSB tuning (Table 2) — matches the
    # ~1 KB node-size target the index factory assumes.
    return {f"k{i:08d}".encode(): (f"v{i}-".encode() * 64)[:256] for i in range(size)}


def open_repo(**kwargs):
    kwargs.setdefault("index_factory", INDEX_FACTORY)
    kwargs.setdefault("num_shards", NUM_SHARDS)
    return Repository.open(**kwargs)


# ---------------------------------------------------------------------------
# 1. Fork cost
# ---------------------------------------------------------------------------

def run_fork_sweep():
    """Mean fork latency (µs) and store-byte delta per dataset size."""
    latencies = []
    byte_deltas = []
    for size in FORK_SIZES:
        with open_repo() as repo:
            main = repo.default_branch
            main.put_many(dataset(size))
            main.commit("load")
            bytes_before = repo.storage_bytes()
            started = time.perf_counter()
            for serial in range(FORKS_PER_SIZE):
                main.fork(f"fork-{serial:02d}")
            elapsed = time.perf_counter() - started
            latencies.append(elapsed / FORKS_PER_SIZE * 1e6)
            byte_deltas.append(repo.storage_bytes() - bytes_before)
    return latencies, byte_deltas


# ---------------------------------------------------------------------------
# 2. Merge throughput vs diff size (and dataset size)
# ---------------------------------------------------------------------------

def run_merge_sweep():
    """Merge wall time over (dataset size, per-branch edit count)."""
    rows = []
    timings = {}
    for size in MERGE_SIZES:
        base = dataset(size)
        keys = sorted(base)
        for delta in MERGE_DELTAS:
            with open_repo() as repo:
                main = repo.default_branch
                main.put_many(base)
                main.commit("load")
                left = main.fork("left")
                right = main.fork("right")
                # Disjoint edit ranges: no conflicts, 2·delta merged keys.
                left.put_many({key: b"left-edit" for key in keys[:delta]})
                left.commit("left edits")
                right.put_many({key: b"right-edit" for key in keys[delta:2 * delta]})
                right.commit("right edits")
                started = time.perf_counter()
                outcome = repo.merge("left", "right")
                elapsed = time.perf_counter() - started
                merged = len(outcome.merged_keys)
                assert merged == delta
                timings[(size, delta)] = elapsed
                rows.append([size, delta, f"{elapsed * 1e3:.1f}",
                             f"{merged / elapsed:.0f}"])
    return rows, timings


# ---------------------------------------------------------------------------
# 3. YCSB-A over concurrent branches
# ---------------------------------------------------------------------------

def make_latency_repo():
    """A repository whose shard stores sleep a simulated remote-read RTT."""
    def fresh_store():
        return MeteredNodeStore(InMemoryNodeStore(),
                                get_cost_seconds=GET_RTT_SECONDS, realtime=True)

    return open_repo(store_factory=fresh_store, cache_bytes=0)


def run_branch_ycsb(num_branches: int) -> float:
    """Aggregate YCSB-A ops/s over ``num_branches`` concurrent branches."""
    with make_latency_repo() as repo:
        main = repo.default_branch
        load = YCSBWorkload(YCSBConfig(record_count=YCSB_RECORDS, seed=11))
        main.put_many(load.initial_dataset())
        main.commit("ycsb load")
        branches = [main.fork(f"client-{i}") if num_branches > 1 else main
                    for i in range(num_branches)]
        ops_per_branch = YCSB_OPERATIONS // num_branches
        streams = [
            list(YCSBWorkload(YCSBConfig(
                record_count=YCSB_RECORDS, operation_count=ops_per_branch,
                write_ratio=0.5, theta=0.9, seed=100 + i)).operations())
            for i in range(num_branches)
        ]
        barrier = threading.Barrier(num_branches + 1)
        failures = []

        def client(branch, operations):
            try:
                barrier.wait()
                for serial, operation in enumerate(operations, start=1):
                    if operation.is_write:
                        branch.put(operation.key, operation.value)
                    else:
                        branch.get(operation.key)
                    if serial % COMMIT_EVERY == 0:
                        branch.commit(f"checkpoint @{serial}")
                branch.commit("final")
            except BaseException as exc:  # pragma: no cover - failure path
                failures.append(exc)

        threads = [threading.Thread(target=client, args=(branch, stream))
                   for branch, stream in zip(branches, streams)]
        for thread in threads:
            thread.start()
        barrier.wait()
        started = time.perf_counter()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        if failures:
            raise failures[0]
        total_ops = sum(len(stream) for stream in streams)
        return total_ops / elapsed


# ---------------------------------------------------------------------------
# The benchmark entry point
# ---------------------------------------------------------------------------

def run_all():
    fork_latencies, fork_bytes = run_fork_sweep()
    merge_rows, merge_timings = run_merge_sweep()
    ycsb = {count: run_branch_ycsb(count) for count in BRANCH_COUNTS}
    return fork_latencies, fork_bytes, merge_rows, merge_timings, ycsb


def test_branching(benchmark):
    fork_latencies, fork_bytes, merge_rows, merge_timings, ycsb = (
        benchmark.pedantic(run_all, rounds=1, iterations=1))

    report_series(
        "bench_branching_fork",
        f"Fork cost vs dataset size ({FORKS_PER_SIZE} forks per size, "
        f"POS-Tree, {NUM_SHARDS} shards) — O(1): one journal append, zero tree bytes",
        "Records",
        FORK_SIZES,
        {"Fork latency (µs)": [round(lat, 1) for lat in fork_latencies],
         "Tree bytes copied": fork_bytes},
    )
    report_table(
        "bench_branching_merge",
        "Three-way merge: wall time vs dataset size and per-branch edits "
        "(disjoint edits, POS-Tree)",
        ["Records", "EditsPerBranch", "MergeMs", "MergedKeys/s"],
        merge_rows,
    )
    report_table(
        "bench_branching_ycsb",
        f"YCSB-A ({YCSB_OPERATIONS} total ops, θ=0.9, {YCSB_RECORDS} records, "
        f"simulated {GET_RTT_SECONDS * 1e6:.0f}µs/node-read): one branch/one "
        "thread vs four branches/four threads",
        ["Branches", "Threads", "Ops/s", "Speedup"],
        [[count, count, f"{ycsb[count]:.0f}", f"{ycsb[count] / ycsb[1]:.2f}x"]
         for count in BRANCH_COUNTS],
    )

    # Acceptance shapes -----------------------------------------------------
    # Fork is O(1): a 50× larger dataset must not make forks meaningfully
    # slower (generous 8× bound soaks up timer noise on µs-scale events),
    # and forking must copy zero tree bytes.
    assert fork_latencies[-1] < fork_latencies[0] * 8 + 200, (
        f"fork latency grew with dataset size: {fork_latencies}")
    assert all(delta == 0 for delta in fork_bytes), (
        f"forking copied tree bytes: {fork_bytes}")
    # Merge scales sublinearly in the dataset (the three structural diffs
    # prune shared subtrees — see RangedMerkleSearchTree.iterate_diff; the
    # residual linear term is the write path's internal-level rebuild), and
    # grows with the edit count: the work lives mostly on the diff axis.
    small, large = MERGE_SIZES
    fixed_edits = MERGE_DELTAS[1]
    assert merge_timings[(large, fixed_edits)] < merge_timings[(small, fixed_edits)] * 3.5, (
        "merge time tracked the dataset size, not the diff size")
    assert merge_timings[(large, MERGE_DELTAS[-1])] > merge_timings[(large, MERGE_DELTAS[0])], (
        "merge time did not grow with the edit count")
    # Four isolated branches over remote-latency stores must beat one
    # branch on the same total operation count.
    assert ycsb[4] > ycsb[1], (
        f"4 concurrent branches not faster than 1: {ycsb}")
