"""Figure 9 — distribution of traversed tree heights per operation.

For a uniform write workload the paper records how many tree levels each
operation traverses.  POS-Tree and the MVMB+-Tree baseline cluster tightly
around their balanced height, MPT spreads over several levels (keys
terminate at different trie depths), and MBT is a single constant.

Expected shape (paper): MBT constant (3 in the paper's setting); POS-Tree
around 4; MPT spread over 5–7 with several peaks.
"""

from common import INDEX_NAMES, make_index, report_table, scaled
from repro.analysis.treestats import depth_distribution
from repro.storage.memory import InMemoryNodeStore
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload

RECORD_COUNT = scaled(8_000)
PROBE_COUNT = scaled(2_000)


def run_experiment():
    workload = YCSBWorkload(YCSBConfig(record_count=RECORD_COUNT, operation_count=PROBE_COUNT,
                                       write_ratio=1.0, seed=91))
    dataset = workload.initial_dataset()
    probe_keys = [op.key for op in workload.operations()]

    distributions = {}
    for name in INDEX_NAMES:
        index = make_index(name, InMemoryNodeStore(), dataset_size=RECORD_COUNT)
        snapshot = index.from_items(dataset)
        distributions[name] = depth_distribution(snapshot, probe_keys)
    return distributions


def test_fig09_tree_height(benchmark):
    distributions = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    max_depth = max(depth for dist in distributions.values() for depth in dist)
    headers = ["index"] + [f"height={d}" for d in range(1, max_depth + 1)]
    rows = []
    for name in INDEX_NAMES:
        dist = distributions[name]
        rows.append([name] + [dist.get(d, 0) for d in range(1, max_depth + 1)])
    report_table("fig09_tree_height",
                 f"Figure 9: #operations per traversed tree height "
                 f"({RECORD_COUNT} records, {PROBE_COUNT} uniform write probes)",
                 headers, rows)

    # Paper shape: MBT hits exactly one height; MPT spreads over more
    # distinct heights than POS-Tree; MPT's typical path is the longest.
    assert len(distributions["MBT"]) == 1
    assert len(distributions["MPT"]) >= len(distributions["POS-Tree"])
    deepest = {name: max(dist) for name, dist in distributions.items()}
    assert deepest["MPT"] >= deepest["POS-Tree"]
