"""Figures 11 and 12 — latency distributions on the Wiki and Ethereum data.

Figure 11 repeats the latency measurement on the Wikipedia-abstract
dataset (same qualitative ranking as YCSB).  Figure 12 repeats it on the
Ethereum transaction workload, where the block-list scan dominates reads,
so all candidates show similar read latency while writes (per-block
bottom-up builds) differ.

Expected shape (paper): Figure 11 mirrors Figure 10; in Figure 12 the read
latencies of all structures are close to each other.
"""

import time

from common import INDEX_NAMES, make_index, report_table, scaled, throughput
from repro.analysis.histogram import LatencyRecorder
from repro.blockchain import Ledger
from repro.storage.memory import InMemoryNodeStore
from repro.workloads.ethereum import EthereumDatasetGenerator
from repro.workloads.wiki import WikiDatasetGenerator


def run_wiki_latency():
    generator = WikiDatasetGenerator(page_count=scaled(3_000), versions=5,
                                     edits_per_version=scaled(100), seed=111)
    dataset = generator.initial_dataset()
    read_keys = generator.read_keys(scaled(1_500))
    write_changes = list(generator.version_stream())

    results = {}
    for name in INDEX_NAMES:
        index = make_index(name, InMemoryNodeStore(), dataset_size=generator.page_count,
                           value_size=100)
        snapshot = index.from_items(dataset)

        reads = LatencyRecorder()
        for key in read_keys:
            start = time.perf_counter()
            snapshot.get(key)
            reads.record(time.perf_counter() - start)

        writes = LatencyRecorder()
        for version in write_changes:
            for key, value in list(version.changes.items())[: scaled(60)]:
                start = time.perf_counter()
                snapshot = snapshot.put(key, value)
                writes.record(time.perf_counter() - start)
        results[name] = (reads.summary(), writes.summary())
    return results


def run_ethereum_latency():
    generator = EthereumDatasetGenerator(blocks=max(4, scaled(8)),
                                         transactions_per_block=scaled(150), seed=112)
    blocks = generator.all_blocks()

    results = {}
    for name in INDEX_NAMES:
        store = InMemoryNodeStore()
        ledger = Ledger(index_factory=lambda n=name, s=store: make_index(
            n, s, dataset_size=generator.transactions_per_block, value_size=532))

        writes = LatencyRecorder()
        for block in blocks:
            start = time.perf_counter()
            ledger.append_block(block.records())
            writes.record(time.perf_counter() - start)

        reads = LatencyRecorder()
        for block in blocks:
            for tx in block.transactions[::15]:
                start = time.perf_counter()
                ledger.get_transaction(tx.key)
                reads.record(time.perf_counter() - start)
        results[name] = (reads.summary(), writes.summary())
    return results


def _rows(results):
    rows = []
    for name in INDEX_NAMES:
        read_summary, write_summary = results[name]
        rows.append([
            name,
            round(read_summary["p50"] * 1e6, 1),
            round(read_summary["p99"] * 1e6, 1),
            round(write_summary["p50"] * 1e6, 1),
            round(write_summary["p99"] * 1e6, 1),
        ])
    return rows


def test_fig11_wiki_latency(benchmark):
    results = benchmark.pedantic(run_wiki_latency, rounds=1, iterations=1)
    report_table("fig11_wiki_latency",
                 "Figure 11: Wiki per-operation latency (µs)",
                 ["index", "read p50", "read p99", "write p50", "write p99"],
                 _rows(results))
    # Paper shape: MPT's deep per-nibble traversal makes its reads the
    # slowest.  At laptop scale the two medians sit within a few tens of
    # microseconds of each other, so (as in the Figure 6 read panels) a
    # strict ordering is noise-flaky; assert it with a 25 % noise margin.
    assert results["MPT"][0]["p50"] >= results["POS-Tree"][0]["p50"] * 0.75


def test_fig12_ethereum_latency(benchmark):
    results = benchmark.pedantic(run_ethereum_latency, rounds=1, iterations=1)
    report_table("fig12_ethereum_latency",
                 "Figure 12: Ethereum per-operation latency (µs; writes are per block)",
                 ["index", "read p50", "read p99", "write(block) p50", "write(block) p99"],
                 _rows(results))
    # Paper shape: read latencies are similar across structures because the
    # block scan dominates — within a small factor of each other.
    read_medians = [results[name][0]["p50"] for name in INDEX_NAMES]
    assert max(read_medians) < 12 * min(read_medians)
