"""Shared pytest fixtures for the benchmark harness."""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session", autouse=True)
def results_dir():
    """Directory where every benchmark writes its paper-style data table."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR
