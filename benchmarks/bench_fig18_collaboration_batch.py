"""Figure 18 — diverse-group collaboration: effect of the write batch size.

Same multi-group scenario as Figure 17 at a fixed 50 % overlap ratio, but
varying the update batch size.  Larger batches touch a larger portion of
the structure per version, so fewer nodes can be reused between versions.

Expected shape (paper): the deduplication ratio (and node sharing ratio)
decreases as the batch size grows; storage and node counts decrease too
because fewer intermediate versions are materialized.
"""

from common import INDEX_NAMES, make_index, report_series, scaled
from repro.core.metrics import storage_breakdown
from repro.storage.memory import InMemoryNodeStore
from repro.workloads.collaboration import CollaborationWorkload

BATCH_SIZES = [scaled(500), scaled(1_000), scaled(2_000), scaled(4_000)]
GROUPS = 6
BASE_RECORDS = scaled(2_000)
OPERATIONS_PER_GROUP = scaled(6_000)
OVERLAP = 0.5


def run_experiment():
    storage_mb = {name: [] for name in INDEX_NAMES}
    node_counts = {name: [] for name in INDEX_NAMES}
    dedup_ratios = {name: [] for name in INDEX_NAMES}
    sharing_ratios = {name: [] for name in INDEX_NAMES}
    for batch_size in BATCH_SIZES:
        workload = CollaborationWorkload(
            base_records=BASE_RECORDS, group_count=GROUPS,
            operations_per_group=OPERATIONS_PER_GROUP, overlap_ratio=OVERLAP,
            batch_size=batch_size, seed=181,
        )
        for name in INDEX_NAMES:
            store = InMemoryNodeStore()
            index = make_index(name, store, dataset_size=BASE_RECORDS, value_size=256)
            base = index.from_items(workload.base_dataset())
            snapshots = [base]
            for group, batches in workload.all_groups():
                snapshot = base
                for batch in batches:
                    snapshot = snapshot.update(batch)
                    snapshots.append(snapshot)
            breakdown = storage_breakdown(snapshots)
            storage_mb[name].append(round(store.total_bytes() / 1e6, 2))
            node_counts[name].append(len(store))
            dedup_ratios[name].append(round(breakdown.deduplication_ratio, 3))
            sharing_ratios[name].append(round(breakdown.node_sharing_ratio, 3))
    return storage_mb, node_counts, dedup_ratios, sharing_ratios


def test_fig18_collaboration_batch_size(benchmark):
    storage_mb, node_counts, dedup_ratios, sharing_ratios = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1)
    report_series("fig18a_batch_storage", "Figure 18(a): storage usage (MB) vs batch size",
                  "Batch size", BATCH_SIZES, storage_mb)
    report_series("fig18b_batch_nodes", "Figure 18(b): #nodes vs batch size",
                  "Batch size", BATCH_SIZES, node_counts)
    report_series("fig18c_batch_dedup", "Figure 18(c): deduplication ratio vs batch size",
                  "Batch size", BATCH_SIZES, dedup_ratios)
    report_series("fig18d_batch_sharing", "Figure 18(d): node sharing ratio vs batch size",
                  "Batch size", BATCH_SIZES, sharing_ratios)

    for name in INDEX_NAMES:
        # Paper shape: dedup ratio decreases as the batch size grows (versions
        # share less) — allow equality for MBT whose ratio is low throughout.
        assert dedup_ratios[name][0] >= dedup_ratios[name][-1] - 0.02
        # Intermediate versions shrink with larger batches, so does storage.
        assert storage_mb[name][0] >= storage_mb[name][-1] * 0.8
