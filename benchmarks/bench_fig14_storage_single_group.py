"""Figure 14 — storage usage and node counts for single-group data access.

A single group loads a YCSB dataset and applies update batches; the figure
reports, per index, the total storage consumed and the total number of
nodes created across the resulting versions.

Expected shape (paper): MPT consumes the most storage (tallest trees, most
nodes per update); MBT creates the fewest *nodes* (its node count is fixed)
but large ones; POS-Tree is the most compact overall and comparable to the
baseline.
"""

from common import INDEX_NAMES, load_in_batches, make_index, report_series, scaled
from repro.storage.memory import InMemoryNodeStore
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload

RECORD_COUNTS = [scaled(2_000), scaled(4_000), scaled(8_000), scaled(16_000)]
UPDATE_BATCHES = 5
BATCH_SIZE = scaled(1_000)


def run_experiment():
    """Total storage written while loading and updating (every created node).

    As in the paper, all nodes created by the write path count towards the
    storage consumption — versions are immutable and nothing is garbage
    collected — so structures that create more or larger nodes per update
    (tall tries, big buckets) pay for it here.
    """
    storage_mb = {name: [] for name in INDEX_NAMES}
    node_counts = {name: [] for name in INDEX_NAMES}
    for record_count in RECORD_COUNTS:
        workload = YCSBWorkload(YCSBConfig(record_count=record_count, batch_size=BATCH_SIZE,
                                           seed=141))
        dataset = workload.initial_dataset()
        update_stream = list(workload.version_stream(UPDATE_BATCHES, BATCH_SIZE))
        for name in INDEX_NAMES:
            store = InMemoryNodeStore()
            index = make_index(name, store, dataset_size=record_count)
            snapshot, _ = load_in_batches(index, dataset, BATCH_SIZE)
            for batch in update_stream:
                snapshot = snapshot.update(batch)
            storage_mb[name].append(round(store.total_bytes() / 1e6, 2))
            node_counts[name].append(len(store))
    return storage_mb, node_counts


def test_fig14_storage_single_group(benchmark):
    storage_mb, node_counts = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report_series("fig14a_storage_single_group",
                  f"Figure 14(a): storage usage (MB) after load + {UPDATE_BATCHES} update batches",
                  "#Records", RECORD_COUNTS, storage_mb)
    report_series("fig14b_nodes_single_group",
                  "Figure 14(b): number of unique nodes stored",
                  "#Records", RECORD_COUNTS, node_counts)

    largest = -1
    # Paper shape: MPT consumes more storage than POS-Tree (tall trie, many
    # nodes rewritten per update); MBT's node *count* grows the slowest of all
    # candidates because its tree shape is fixed.
    assert storage_mb["MPT"][largest] > storage_mb["POS-Tree"][largest]
    growth = {name: node_counts[name][-1] / node_counts[name][0] for name in INDEX_NAMES}
    assert growth["MBT"] == min(growth.values())
