"""Replication traffic — frontier sync vs shipping the whole dataset.

The sync protocol's whole claim is that anti-entropy traffic is
proportional to the *structural divergence* between two replicas, not to
the dataset: the frontier descent prunes every subtree whose root digest
the receiver already holds, so after a 10% overwrite only the touched
root-to-leaf paths (plus structural neighbours the copy-on-write rewrite
dragged along) cross the wire.

This benchmark measures exactly that, per index family (POS-Tree, MBT,
MPT): a blank replica's full catch-up is the *naive* cost — what a
dump-everything protocol would ship, since every reachable node moves —
and a second sync after overwriting a contiguous 10% key range (the
partition-divergence shape: one replica kept taking writes for a hot
range) is the *delta* cost.  The acceptance bar checked into
``BENCH_sync.json``: the delta transfers **under 25% of the naive
bytes** on all three families.  MPT and POS-Tree sit far below the bar
(key-ordered copy-on-write keeps the damage to neighbouring subtrees);
MBT is the honest worst case — its hashed buckets scatter the range
across the whole tree — which is why the bar is as high as 25%.

The full run writes ``BENCH_sync.json`` at the repository root (the
checked-in artifact).  ``--quick`` is the CI smoke configuration: a
smaller dataset, JSON under ``BENCH_sync_quick.json`` (gitignored).

Run directly::

    PYTHONPATH=src python benchmarks/bench_sync.py [--quick]
"""

import argparse
import json
import os

from common import make_index, report
from repro.analysis.report import format_table
from repro.api import Repository

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FAMILIES = ["POS-Tree", "MBT", "MPT"]
NUM_SHARDS = 3
DELTA_FRACTION = 0.10
ACCEPTANCE_RATIO = 0.25


def dataset(record_count, value_size=128):
    """Deterministic records: fixed-width keys, ``value_size``-byte values."""
    return {
        f"user{i:08d}".encode():
            (f"value-{i:08d}-".encode() * (value_size // 15 + 1))[:value_size]
        for i in range(record_count)
    }


def open_replica(family, record_count):
    repo = Repository.open(
        index_factory=lambda store: make_index(
            family, store, dataset_size=record_count),
        num_shards=NUM_SHARDS)
    return repo.__enter__()


def run_one(family, record_count):
    """Full catch-up vs 10%-overwrite delta for one index family."""
    records = dataset(record_count)
    source = open_replica(family, record_count)
    replica = open_replica(family, record_count)
    try:
        source.import_data(records, message="seed")

        full = replica.sync(source)

        branch = source.default_branch
        # A *contiguous* 10% key range — the partition-divergence shape
        # (one replica kept taking writes for a hot range).  Key-ordered
        # structures (POS-Tree, MPT) keep the damage to neighbouring
        # subtrees; MBT scatters the range across its hashed buckets
        # regardless, so it stays the honest worst case.
        delta_keys = sorted(records)[:int(len(records) * DELTA_FRACTION)]
        for key in delta_keys:
            branch.put(key, b"overwritten-" + records[key])
        branch.commit("10% overwrite")

        delta = replica.sync(source)
        assert (replica.service.branch_head("main").digest
                == source.service.branch_head("main").digest)
    finally:
        source.close()
        replica.close()

    ratio = delta.total_bytes / full.total_bytes
    return {
        "index": family,
        "records": record_count,
        "delta_records": len(delta_keys),
        "full_nodes": full.total_nodes,
        "full_bytes": full.total_bytes,
        "delta_nodes": delta.total_nodes,
        "delta_bytes": delta.total_bytes,
        "delta_over_full_bytes": round(ratio, 4),
        "passes_25pct_bar": ratio < ACCEPTANCE_RATIO,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: smaller dataset, gitignored JSON")
    args = parser.parse_args(argv)
    record_count = 400 if args.quick else 2_000
    suffix = "_quick" if args.quick else ""

    results = [run_one(family, record_count) for family in FAMILIES]

    rows = [[r["index"], r["records"], r["full_nodes"], r["full_bytes"],
             r["delta_nodes"], r["delta_bytes"],
             f"{100 * r['delta_over_full_bytes']:.1f}%",
             "yes" if r["passes_25pct_bar"] else "NO"]
            for r in results]
    body = format_table(
        ["Index", "Records", "Full nodes", "Full bytes",
         "Delta nodes", "Delta bytes", "Delta/full", "<25%"], rows)
    report(f"bench_sync{suffix}",
           "Replication traffic: 10%-overwrite sync vs full catch-up", body)

    payload = {
        "benchmark": "bench_sync",
        "description": "Anti-entropy sync traffic per index family: a blank "
                       "replica's full catch-up (= naive dump-everything "
                       "bytes) vs the delta sync after overwriting a "
                       "contiguous 10% key range; acceptance bar: delta "
                       "< 25% of full",
        "num_shards": NUM_SHARDS,
        "delta_fraction": DELTA_FRACTION,
        "acceptance_ratio": ACCEPTANCE_RATIO,
        "acceptance_met": all(r["passes_25pct_bar"] for r in results),
        "results": results,
    }
    json_path = os.path.join(REPO_ROOT, f"BENCH_sync{suffix}.json")
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {json_path}")
    return 0 if payload["acceptance_met"] else 1


def test_sync_bench_quick_smoke():
    """Pytest entry point (every bench script runs under pytest too)."""
    assert main(["--quick"]) == 0


if __name__ == "__main__":
    raise SystemExit(main())
