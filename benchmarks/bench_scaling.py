"""Backend scaling — thread vs process shard engine under YCSB-C.

The service's default backend keeps every shard in the caller's process,
so concurrent clients contend on Python's GIL no matter how many shards
(or cores) exist.  ``backend="process"`` moves each shard into its own
forked worker process — this benchmark measures what that buys (or
costs): aggregate YCSB-C (read-only, Zipfian θ = 0.9) ops/s as the
worker count grows, for both backends, with ``num_shards`` matched to
the worker count so each configuration has one shard per client thread.

What to expect:

* On a **single-core** box (CI containers — the recorded artifact says
  how many cores it saw) process workers cannot beat the GIL: the wins
  from parallel tree traversal are given back to pipe serialization, so
  the process backend trails at a roughly constant factor.  The curve is
  still the honest baseline the equivalence suite pins semantics to.
* With **multiple cores**, thread workers plateau at ~1 core of useful
  work while process workers scale with the shard count, because each
  worker owns its shard's entire read path (store, cache, tree walk) in
  its own interpreter.

The full run writes ``BENCH_scaling.json`` at the repository root (the
checked-in artifact, including ``os.cpu_count()`` for context).
``--quick`` is the CI smoke configuration: fewer workers and operations,
JSON under ``BENCH_scaling_quick.json`` (gitignored).

Run directly::

    PYTHONPATH=src python benchmarks/bench_scaling.py [--quick]
"""

import argparse
import json
import os

from common import report
from repro.analysis.report import format_table
from repro.indexes import POSTree
from repro.service import VersionedKVService
from repro.workloads.ycsb import YCSBConfig, YCSBServiceDriver, YCSBWorkload

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BACKENDS = ["thread", "process"]


def make_index(store):
    """POS-Tree tuned to ~1 KB nodes (the paper's Section 5 tuning)."""
    return POSTree(store, target_node_size=1024, estimated_entry_size=272)


def run_one(backend, workers, record_count, operation_count):
    """Load a fresh service and run YCSB-C with ``workers`` client threads."""
    workload = YCSBWorkload(YCSBConfig(
        record_count=record_count, operation_count=operation_count,
        write_ratio=0.0, theta=0.9, batch_size=1_000, seed=11))
    driver = YCSBServiceDriver(workload)
    service = VersionedKVService(make_index, num_shards=workers,
                                 batch_size=256, backend=backend)
    service.open()
    try:
        driver.load(service)
        counters = driver.run_concurrent(service, num_threads=workers,
                                         operation_count=operation_count)
    finally:
        service.close()
    return {
        "backend": backend,
        "workers": workers,
        "operations": counters.operations,
        "seconds": round(counters.elapsed_seconds, 4),
        "ops_per_second": round(counters.throughput(), 1),
    }


def run_grid(worker_counts, record_count, operation_count):
    rows, results = [], []
    for backend in BACKENDS:
        baseline = None
        for workers in worker_counts:
            result = run_one(backend, workers, record_count, operation_count)
            if baseline is None:
                baseline = result["ops_per_second"] or 1.0
            result["speedup_vs_1_worker"] = round(
                result["ops_per_second"] / baseline, 2)
            results.append(result)
            rows.append([backend, workers, result["operations"],
                         f"{result['ops_per_second']:.0f}",
                         f"{result['speedup_vs_1_worker']:.2f}x",
                         f"{result['seconds']:.3f}"])
    return rows, results


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: fewer workers/ops, gitignored JSON")
    args = parser.parse_args(argv)
    if args.quick:
        worker_counts, record_count, operation_count = [1, 2], 300, 500
        suffix = "_quick"
    else:
        worker_counts, record_count, operation_count = [1, 2, 4], 2_000, 6_000
        suffix = ""

    cpu_count = os.cpu_count() or 1
    rows, results = run_grid(worker_counts, record_count, operation_count)

    body = format_table(
        ["Backend", "Workers", "Ops", "Ops/s", "Speedup", "Secs"], rows)
    body += f"\ncpu_count: {cpu_count}\n"
    report(f"bench_scaling{suffix}",
           "Shard backends: YCSB-C ops/s vs worker count "
           "(thread vs process)", body)

    payload = {
        "benchmark": "bench_scaling",
        "description": "YCSB-C (read-only, Zipf 0.9) throughput vs worker "
                       "count for the thread- and process-shard backends; "
                       "num_shards == workers in every cell",
        "cpu_count": cpu_count,
        "workload": {
            "record_count": record_count,
            "operation_count": operation_count,
            "write_ratio": 0.0,
            "theta": 0.9,
            "index": "POS-Tree (1 KB nodes)",
        },
        "results": results,
    }
    json_path = os.path.join(REPO_ROOT, f"BENCH_scaling{suffix}.json")
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {json_path}")
    return 0


def test_scaling_bench_quick_smoke():
    """Pytest entry point (every bench script runs under pytest too)."""
    assert main(["--quick"]) == 0


if __name__ == "__main__":
    raise SystemExit(main())
