"""Shared infrastructure for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper's
evaluation (Section 5).  They all go through the helpers here so that:

* each index is tuned the way the paper tunes it (node sizes of roughly
  1 KB, Section 5 "we tune the size of each index node to be approximately
  1 KB"), with MBT's bucket count chosen relative to the dataset size;
* workloads are generated deterministically from the same
  :mod:`repro.workloads` generators the tests use;
* results are printed as plain-text tables *and* written to
  ``benchmarks/results/<experiment>.txt`` so they survive pytest's output
  capturing;
* the experiment scale can be adjusted with the ``REPRO_BENCH_SCALE``
  environment variable (``tiny``, ``small`` (default), ``large``) — the
  paper's absolute sizes do not fit a laptop-scale pure-Python run, so the
  defaults are scaled down while preserving every ratio the figures are
  about.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.report import format_series, format_table
from repro.indexes import MVMBTree, MerkleBucketTree, MerklePatriciaTrie, POSTree
from repro.storage.memory import InMemoryNodeStore

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Display order used by every table (matches the paper's legends).
INDEX_NAMES = ["POS-Tree", "MBT", "MPT", "MVMB+-Tree"]

_SCALES = {
    "tiny": 0.25,
    "small": 1.0,
    "large": 4.0,
}


def scale_factor() -> float:
    """Multiplier applied to dataset sizes (REPRO_BENCH_SCALE=tiny|small|large)."""
    name = os.environ.get("REPRO_BENCH_SCALE", "small").lower()
    return _SCALES.get(name, 1.0)


def scaled(count: int) -> int:
    """Scale a dataset/operation count by the configured factor."""
    return max(64, int(count * scale_factor()))


# ---------------------------------------------------------------------------
# Index construction tuned to ~1 KB nodes (paper Section 5)
# ---------------------------------------------------------------------------

def make_index(name: str, store: Optional[InMemoryNodeStore] = None,
               dataset_size: int = 10_000, value_size: int = 256,
               node_size: int = 1024, mbt_capacity: Optional[int] = None):
    """Build one index candidate tuned the way the paper tunes it.

    ``value_size`` keeps the tree node sizes near ``node_size`` bytes.  MBT's
    bucket count is *fixed* (the structure cannot change it over its life
    cycle), so by default it uses a constant capacity independent of the
    dataset size — which is exactly why its buckets, and therefore its leaf
    scan/update costs, grow as the data grows.
    """
    store = store if store is not None else InMemoryNodeStore()
    entry_size = value_size + 16
    if name == "POS-Tree":
        return POSTree(store, target_node_size=node_size, estimated_entry_size=entry_size)
    if name == "MBT":
        capacity = mbt_capacity if mbt_capacity is not None else scaled(1_024)
        return MerkleBucketTree(store, capacity=capacity, fanout=4)
    if name == "MPT":
        return MerklePatriciaTrie(store)
    if name == "MVMB+-Tree":
        leaf_capacity = max(2, node_size // entry_size)
        internal_capacity = max(4, node_size // 48)
        return MVMBTree(store, leaf_capacity=leaf_capacity, internal_capacity=internal_capacity)
    raise ValueError(f"unknown index name: {name}")


# ---------------------------------------------------------------------------
# Workload execution helpers
# ---------------------------------------------------------------------------

def load_in_batches(index, dataset: Mapping[bytes, bytes], batch_size: int):
    """Load a dataset into a fresh snapshot in batches; return (snapshot, seconds)."""
    snapshot = index.empty_snapshot()
    items = list(dataset.items())
    start = time.perf_counter()
    for begin in range(0, len(items), batch_size):
        snapshot = snapshot.update(dict(items[begin : begin + batch_size]))
    elapsed = time.perf_counter() - start
    return snapshot, elapsed


def run_read_workload(snapshot, keys: Sequence[bytes]) -> float:
    """Execute point lookups; return the elapsed wall-clock seconds."""
    start = time.perf_counter()
    for key in keys:
        snapshot.get(key)
    return time.perf_counter() - start


def run_write_workload(snapshot, batches: Iterable[Mapping[bytes, bytes]]):
    """Apply write batches; return (final snapshot, versions, elapsed seconds)."""
    versions = [snapshot]
    start = time.perf_counter()
    for batch in batches:
        snapshot = snapshot.update(batch)
        versions.append(snapshot)
    elapsed = time.perf_counter() - start
    return snapshot, versions, elapsed


def throughput(operations: int, seconds: float) -> float:
    """Operations per second (guarding against zero elapsed time)."""
    if seconds <= 0:
        return float("inf")
    return operations / seconds


# ---------------------------------------------------------------------------
# Result reporting
# ---------------------------------------------------------------------------

def report(experiment: str, title: str, body: str) -> None:
    """Print one experiment's table and persist it under benchmarks/results/."""
    separator = "#" * max(len(title) + 4, 40)
    text = f"{separator}\n# {title}\n{separator}\n{body}\n"
    print("\n" + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{experiment}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)


def report_series(experiment: str, title: str, x_label: str, x_values: Sequence,
                  series: Mapping[str, Sequence[float]]) -> None:
    """Format one figure's data series and report it."""
    report(experiment, title, format_series(x_label, x_values, series))


def report_table(experiment: str, title: str, headers: Sequence[str],
                 rows: Sequence[Sequence]) -> None:
    """Format one table and report it."""
    report(experiment, title, format_table(headers, rows))
