"""Durable storage engine — recovery time, GC reclamation, read throughput.

This benchmark is not a paper figure: it evaluates the append-only
segment storage engine (:mod:`repro.storage.segment`, documented in
``docs/STORAGE.md``) that makes the service layer durable.  Four
questions:

1. **Read throughput** — what does serving point lookups off the segment
   store cost versus the in-memory store and the write-through
   `FileNodeStore`?  Segment reads re-parse and CRC-check every record,
   so they sit below memory but must stay in the same league as the
   plain file store.
2. **Recovery time** — how long does the open-time scan (directory
   rebuild + torn-tail repair) take as the store grows?  Recovery is a
   single sequential pass, so seconds should scale roughly linearly with
   the file bytes scanned.
3. **GC reclamation** — on a 20-version churn workload with
   ``retain_versions=4``, how many segment bytes does mark-and-sweep
   compaction reclaim?  The acceptance bar (ISSUE 3) is ≥ 50 %.
4. **Crash + reopen** — a YCSB-A run with periodic commits over
   `SegmentNodeStore` shards, killed without close(): every committed
   version must be byte-identical readable after recovery, and the
   uncommitted tail must be gone.
"""

import os
import shutil
import tempfile
import time

import pytest

from common import report_table, run_read_workload, scaled, throughput
from repro.indexes import POSTree
from repro.service import VersionedKVService
from repro.storage.file import FileNodeStore
from repro.storage.memory import InMemoryNodeStore
from repro.storage.segment import SegmentNodeStore
from repro.workloads.ycsb import YCSBConfig, YCSBServiceDriver, YCSBWorkload

RECORD_COUNT = scaled(8_000)
READ_OPS = scaled(4_000)
CHURN_VERSIONS = 20
RETAIN_VERSIONS = 4
SEED = 23


@pytest.fixture()
def workdir():
    """A throwaway directory tree for the durable stores."""
    path = tempfile.mkdtemp(prefix="bench-storage-engine-")
    yield path
    shutil.rmtree(path, ignore_errors=True)


def dataset(record_count=RECORD_COUNT):
    workload = YCSBWorkload(YCSBConfig(record_count=record_count, seed=SEED))
    return workload, workload.initial_dataset()


def build_tree(store, data):
    tree = POSTree(store, target_node_size=1024, estimated_entry_size=272)
    snapshot = tree.from_items(data)
    flush = getattr(store, "flush", None)
    if flush is not None:
        flush()
    return tree, snapshot


# ---------------------------------------------------------------------------
# 1. Read throughput: segment store vs memory vs plain file store
# ---------------------------------------------------------------------------

def run_read_comparison(workdir):
    workload, data = dataset()
    read_keys = [workload.keys[i % len(workload.keys)] for i in range(READ_OPS)]
    rows = []
    ops = {}
    stores = [
        ("InMemoryNodeStore", lambda: InMemoryNodeStore()),
        ("FileNodeStore", lambda: FileNodeStore(os.path.join(workdir, "file"))),
        ("SegmentNodeStore", lambda: SegmentNodeStore(os.path.join(workdir, "segment"))),
    ]
    for name, factory in stores:
        store = factory()
        _tree, snapshot = build_tree(store, data)
        elapsed = run_read_workload(snapshot, read_keys)
        ops[name] = throughput(READ_OPS, elapsed)
        rows.append([name, READ_OPS, f"{elapsed:.3f}", round(ops[name])])
    return rows, ops


def test_read_throughput(benchmark, workdir):
    rows, ops = benchmark.pedantic(run_read_comparison, args=(workdir,), rounds=1, iterations=1)
    report_table(
        "storage_engine_read_throughput",
        f"Storage engine: point-lookup throughput off each store "
        f"({RECORD_COUNT} records, POS-Tree, {READ_OPS} reads)",
        ["Store", "Reads", "Seconds", "Ops/s"],
        rows,
    )
    # Shape: memory is the ceiling; the CRC-checking segment store stays
    # within an order of magnitude of the plain file store.
    assert ops["InMemoryNodeStore"] > ops["SegmentNodeStore"]
    assert ops["SegmentNodeStore"] > ops["FileNodeStore"] * 0.1


# ---------------------------------------------------------------------------
# 2. Recovery time: open-time scan vs store size
# ---------------------------------------------------------------------------

def run_recovery(workdir):
    rows = []
    recovered = []
    for label, record_count in [("0.5x", RECORD_COUNT // 2), ("1x", RECORD_COUNT)]:
        directory = os.path.join(workdir, f"recover-{label}")
        _workload, data = dataset(record_count)
        store = SegmentNodeStore(directory)
        build_tree(store, data)
        store.close()
        file_bytes = store.file_bytes()
        node_count = len(store)

        started = time.perf_counter()
        reopened = SegmentNodeStore(directory)
        elapsed = time.perf_counter() - started
        recovered.append((node_count, len(reopened)))
        rows.append([
            label, node_count, file_bytes, f"{elapsed * 1e3:.1f}",
            round(node_count / elapsed) if elapsed else float("inf"),
        ])
    return rows, recovered


def test_recovery_time(benchmark, workdir):
    rows, recovered = benchmark.pedantic(run_recovery, args=(workdir,), rounds=1, iterations=1)
    report_table(
        "storage_engine_recovery",
        "Storage engine: reopen (directory-rebuild scan) time vs store size",
        ["Dataset", "Nodes", "FileBytes", "RecoveryMillis", "Nodes/s"],
        rows,
    )
    for written, reread in recovered:
        assert written == reread  # the scan recovers every committed node


# ---------------------------------------------------------------------------
# 3. GC reclamation on a churn workload (the ISSUE 3 acceptance bar)
# ---------------------------------------------------------------------------

def run_gc_churn(workdir):
    directory = os.path.join(workdir, "gc")
    service = VersionedKVService(
        POSTree, num_shards=4, directory=directory, batch_size=1_000,
        retain_versions=RETAIN_VERSIONS, cache_bytes=0,
    )
    workload = YCSBWorkload(YCSBConfig(record_count=RECORD_COUNT, theta=0.5, seed=SEED))
    driver = YCSBServiceDriver(workload)
    driver.load(service)
    for version, batch in enumerate(
            workload.version_stream(CHURN_VERSIONS, updates_per_version=RECORD_COUNT // 4)):
        service.put_many(batch)
        service.commit(f"churn {version}")
    bytes_before = sum(shard.backing.file_bytes() for shard in service._shards)
    report = service.collect_garbage()
    bytes_after = sum(shard.backing.file_bytes() for shard in service._shards)
    # Every retained version must stay fully readable after the sweep.
    retained_ok = all(
        service.get(workload.keys[0], version=commit.version) is not None
        for commit in service.retained_commits()
    )
    service.close()
    return {
        "bytes_before": bytes_before,
        "bytes_after": bytes_after,
        "report": report,
        "retained_ok": retained_ok,
        "commits": CHURN_VERSIONS + 1,
    }


def test_gc_space_reclaimed(benchmark, workdir):
    result = benchmark.pedantic(run_gc_churn, args=(workdir,), rounds=1, iterations=1)
    report = result["report"]
    report_table(
        "storage_engine_gc",
        f"Storage engine: mark-and-sweep GC on a {CHURN_VERSIONS}-version churn "
        f"workload (retain_versions={RETAIN_VERSIONS}, {RECORD_COUNT} records, 4 shards)",
        ["Commits", "SegmentBytesBefore", "SegmentBytesAfter", "Reclaimed",
         "ReclaimedFraction", "LiveNodes", "SweptNodes", "GCSeconds"],
        [[
            result["commits"], result["bytes_before"], result["bytes_after"],
            report.bytes_reclaimed, f"{report.reclaimed_fraction:.3f}",
            report.live_nodes, report.swept_nodes, f"{report.gc_seconds:.3f}",
        ]],
    )
    assert result["retained_ok"]
    # The ISSUE 3 acceptance criterion: ≥ 50 % of segment bytes reclaimed.
    assert report.reclaimed_fraction >= 0.5, (
        f"GC reclaimed only {report.reclaimed_fraction:.1%} of segment bytes")


# ---------------------------------------------------------------------------
# 4. YCSB-A crash + reopen drill
# ---------------------------------------------------------------------------

def run_crash_drill(workdir):
    directory = os.path.join(workdir, "crash")
    config = YCSBConfig(
        record_count=RECORD_COUNT // 2,
        operation_count=scaled(4_000),
        write_ratio=0.5,
        theta=0.9,
        batch_size=500,
        seed=SEED,
    )
    driver = YCSBServiceDriver(YCSBWorkload(config))

    service = VersionedKVService(POSTree, num_shards=4, directory=directory, batch_size=500)
    load_counters = driver.load(service)
    run_counters = driver.run(service, commit_every=config.operation_count // 4)
    committed = {
        commit.version: dict(service.snapshot(commit.version).items())
        for commit in service.commits
    }
    # Leave an uncommitted tail behind, then crash (no close()).
    service.put(b"uncommitted-tail", b"must not survive")
    service.flush()

    started = time.perf_counter()
    recovered = VersionedKVService(POSTree, num_shards=4, directory=directory, batch_size=500)
    recovery_seconds = time.perf_counter() - started
    versions_ok = all(
        dict(recovered.snapshot(version).items()) == content
        for version, content in committed.items()
    )
    tail_gone = recovered.get(b"uncommitted-tail") is None
    recovered.close()
    return {
        "load_ops_s": round(load_counters.throughput()),
        "run_ops_s": round(run_counters.throughput()),
        "commits": len(committed),
        "recovery_millis": round(recovery_seconds * 1e3, 1),
        "versions_ok": versions_ok,
        "tail_gone": tail_gone,
    }


def test_ycsb_a_crash_and_reopen(benchmark, workdir):
    result = benchmark.pedantic(run_crash_drill, args=(workdir,), rounds=1, iterations=1)
    report_table(
        "storage_engine_crash",
        "Storage engine: YCSB-A (θ=0.9) over durable segment shards — "
        "simulated crash, recovery, committed-version audit",
        ["LoadOps/s", "RunOps/s", "CommittedVersions", "RecoveryMillis",
         "AllVersionsByteIdentical", "UncommittedTailDropped"],
        [[
            result["load_ops_s"], result["run_ops_s"], result["commits"],
            result["recovery_millis"], result["versions_ok"], result["tail_gone"],
        ]],
    )
    assert result["versions_ok"], "a committed version changed across crash recovery"
    assert result["tail_gone"], "the uncommitted tail survived the crash"
