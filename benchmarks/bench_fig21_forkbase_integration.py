"""Figure 21 — system-level throughput with the indexes integrated in Forkbase.

The indexes are plugged into the mini Forkbase engine (single servlet,
single client).  Reads resolve the branch head and traverse the index on
the client, fetching nodes from the servlet through the client-side LRU
cache; each remote fetch is charged a simulated round-trip cost.  Writes
execute entirely on the server.

Expected shape (paper): read throughput is dominated by remote access and
therefore by the cache hit ratio — POS-Tree and the baseline do well, MPT
is the worst; write throughput mirrors the index-level experiment.
"""

import time

from common import INDEX_NAMES, make_index, report_series, scaled, throughput
from repro.forkbase import ForkbaseClient, ForkbaseEngine
from repro.storage.memory import InMemoryNodeStore
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload

RECORD_COUNTS = [scaled(1_000), scaled(4_000), scaled(8_000)]
OPERATION_COUNT = scaled(2_000)
BATCH_SIZE = scaled(1_000)
CLIENT_CACHE_BYTES = 2 * 1024 * 1024


def run_experiment():
    read_series = {name: [] for name in INDEX_NAMES}
    write_series = {name: [] for name in INDEX_NAMES}
    hit_ratio_series = {name: [] for name in INDEX_NAMES}

    for record_count in RECORD_COUNTS:
        workload = YCSBWorkload(YCSBConfig(record_count=record_count,
                                           operation_count=OPERATION_COUNT,
                                           batch_size=BATCH_SIZE, seed=211))
        dataset = workload.initial_dataset()
        read_keys = [op.key for op in workload.operations()]
        write_stream = list(workload.version_stream(2, BATCH_SIZE))

        for name in INDEX_NAMES:
            engine = ForkbaseEngine()
            factory = lambda store, n=name, rc=record_count: make_index(n, store, dataset_size=rc)
            engine.create_dataset("bench", factory)
            client = ForkbaseClient(engine, "bench", factory,
                                    cache_capacity_bytes=CLIENT_CACHE_BYTES)

            # Load the dataset (server side, batched).
            for start in range(0, record_count, BATCH_SIZE):
                batch = dict(list(dataset.items())[start : start + BATCH_SIZE])
                client.write(batch)

            # Read workload through the cached client: wall-clock time plus the
            # simulated remote round-trip time charged by the engine.
            engine.reset_meters()
            start_time = time.perf_counter()
            for key in read_keys:
                client.get(key)
            read_seconds = (time.perf_counter() - start_time) + engine.simulated_seconds
            read_series[name].append(round(throughput(len(read_keys), read_seconds)))
            hit_ratio_series[name].append(round(client.cache_hit_ratio, 3))

            # Write workload (server side).
            engine.reset_meters()
            start_time = time.perf_counter()
            written = 0
            for batch in write_stream:
                client.write(batch)
                written += len(batch)
            write_seconds = (time.perf_counter() - start_time) + engine.simulated_seconds
            write_series[name].append(round(throughput(written, write_seconds)))

    return read_series, write_series, hit_ratio_series


def test_fig21_forkbase_integration(benchmark):
    read_series, write_series, hit_ratio_series = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1)
    report_series("fig21a_forkbase_read",
                  "Figure 21(a): system-level read throughput (ops/s, simulated network)",
                  "#Records", RECORD_COUNTS, read_series)
    report_series("fig21b_forkbase_write",
                  "Figure 21(b): system-level write throughput (ops/s, simulated network)",
                  "#Records", RECORD_COUNTS, write_series)
    report_series("fig21c_forkbase_hit_ratio",
                  "Figure 21 (supplement): client cache hit ratio during reads",
                  "#Records", RECORD_COUNTS, hit_ratio_series)

    # Paper shape: remote access dominates reads, so no candidate beats the
    # cached baseline by much and MPT never exceeds it; POS-Tree stays within
    # a small factor of the baseline.
    assert read_series["MPT"][-1] <= read_series["MVMB+-Tree"][-1]
    assert read_series["POS-Tree"][-1] >= read_series["MVMB+-Tree"][-1] * 0.5
    # Writes mirror the index-level experiment: POS-Tree beats MPT clearly.
    assert write_series["POS-Tree"][-1] > write_series["MPT"][-1]
