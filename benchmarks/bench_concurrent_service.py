"""Concurrent service execution — throughput vs client threads and shards.

This benchmark is not a paper figure: it evaluates the concurrent
execution engine added on top of the sharded versioned-KV service
(:mod:`repro.service.executor` and the thread-safe service paths; see
"The concurrency model" in ``docs/ARCHITECTURE.md``).  It answers one
question: once the serving layer is safe to drive from many client
threads, does adding workers actually buy throughput, and how does the
gain interact with the shard count?

The regime matters.  A pure-Python in-memory lookup is CPU-bound and
serialized by the GIL, so threads cannot speed it up no matter how the
service is locked — on this machine that configuration measures locking
overhead, not parallelism.  Deployments of the paper's stack are not in
that regime: ForkBase's own evaluation (Section 5.6.1) shows remote read
throughput dominated by client↔server round trips.  We reproduce that
regime with a :class:`~repro.storage.metered.MeteredNodeStore` in
``realtime`` mode, which *sleeps* a fixed per-node-read cost (releasing
the GIL) exactly where a networked store would wait on a socket.  Client
threads then overlap their round trips, which is precisely the work a
concurrent execution engine exists to do:

1. **Worker scaling** — at a fixed shard count, YCSB A/B/C throughput
   with 1/2/4 client threads.  Expected shape: near-linear gains for the
   read-heavy mixes (reads overlap freely; only same-shard head reads
   serialize on the shard lock), smaller gains for YCSB-A whose flushes
   serialize per shard.
2. **Shard × worker interaction** — more shards means more independent
   locks, so contention (reported from the service's per-shard
   :class:`~repro.core.metrics.ContentionCounters`) drops as shards grow
   and the worker-scaling curve steepens toward its I/O-overlap limit.

Workload mixes follow the standard YCSB presets over a Zipfian (θ = 0.9)
request stream: A = 50 % writes, B = 5 % writes, C = read-only.
"""

import functools

from common import report_series, report_table, scaled
from repro.indexes import POSTree
from repro.service import VersionedKVService
from repro.storage.memory import InMemoryNodeStore
from repro.storage.metered import MeteredNodeStore
from repro.workloads.ycsb import YCSBConfig, YCSBServiceDriver, YCSBWorkload

RECORD_COUNT = scaled(4_000)
OPERATION_COUNT = scaled(600)
BATCH_SIZE = 200
SHARD_COUNTS = [1, 2, 4, 8]
WORKER_COUNTS = [1, 2, 4]
THETA = 0.9
#: (label, write ratio) per standard YCSB mix.
WORKLOADS = [("YCSB-A", 0.5), ("YCSB-B", 0.05), ("YCSB-C", 0.0)]
#: Simulated remote-storage cost per node read, slept for real (releases
#: the GIL) so concurrent clients genuinely overlap their round trips.
#: Writes stay free so the load phase does not dominate the run time and
#: the read-side overlap is what the worker sweep measures.
GET_RTT_SECONDS = 150e-6


def make_service(num_shards: int) -> VersionedKVService:
    """A POS-Tree service over latency-modelling stores, caching disabled.

    The per-shard node cache is off so every node read pays the simulated
    round trip — the remote-read-dominated regime of ForkBase's
    client/server experiments, where concurrency is the mitigation.
    """
    factory = functools.partial(POSTree, target_node_size=1024, estimated_entry_size=272)

    def fresh_store():
        return MeteredNodeStore(InMemoryNodeStore(),
                                get_cost_seconds=GET_RTT_SECONDS, realtime=True)

    return VersionedKVService(factory, num_shards=num_shards,
                              store_factory=fresh_store, cache_bytes=0,
                              batch_size=BATCH_SIZE)


def run_config(write_ratio: float, num_shards: int, num_workers: int):
    """Load + run one (mix, shards, workers) configuration once."""
    workload = YCSBWorkload(YCSBConfig(
        record_count=RECORD_COUNT,
        operation_count=OPERATION_COUNT,
        write_ratio=write_ratio,
        theta=THETA,
        batch_size=BATCH_SIZE,
        seed=73,
    ))
    driver = YCSBServiceDriver(workload)
    service = make_service(num_shards)
    # Load without paying simulated read latency: reads during the batched
    # load are index-internal and identical across configurations.
    for shard in service._shards:
        shard.backing.realtime = False
    driver.load(service)
    for shard in service._shards:
        shard.backing.realtime = True
    counters = driver.run_concurrent(service, num_threads=num_workers)
    contention = service.metrics().contention
    return counters, contention


def run_sweep():
    """The full (mix × shards × workers) grid; returns series and detail rows."""
    throughput = {}
    detail_rows = []
    for label, write_ratio in WORKLOADS:
        for num_shards in SHARD_COUNTS:
            for num_workers in WORKER_COUNTS:
                counters, contention = run_config(write_ratio, num_shards, num_workers)
                ops_per_second = counters.throughput()
                throughput[(label, num_shards, num_workers)] = ops_per_second
                detail_rows.append([
                    label,
                    num_shards,
                    num_workers,
                    round(ops_per_second),
                    contention.acquisitions,
                    contention.contended,
                    f"{contention.contention_ratio:.3f}",
                    f"{contention.wait_seconds * 1e3:.1f}",
                ])
    return throughput, detail_rows


def test_concurrent_service_scaling(benchmark):
    throughput, detail_rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    # Worker-scaling series at 4 shards (one line per mix).
    series = {
        label: [round(throughput[(label, 4, workers)]) for workers in WORKER_COUNTS]
        for label, _ in WORKLOADS
    }
    report_series(
        "concurrent_service_worker_scaling",
        f"Concurrent service: throughput (ops/s) vs client threads at 4 shards "
        f"({RECORD_COUNT} records, {OPERATION_COUNT} ops, θ={THETA}, "
        f"simulated {GET_RTT_SECONDS * 1e6:.0f}µs/node-read, POS-Tree)",
        "#Workers",
        WORKER_COUNTS,
        series,
    )
    report_table(
        "concurrent_service_detail",
        "Concurrent service detail: throughput and shard-lock contention per config",
        ["Mix", "Shards", "Workers", "Ops/s",
         "LockAcq", "Contended", "ContentionRatio", "LockWaitMs"],
        detail_rows,
    )
    # Acceptance shape: with remote-read latency on the path, four client
    # threads over four shards must beat the single-threaded configuration
    # on read-only YCSB-C (the engine's reason to exist).
    single = throughput[("YCSB-C", 4, 1)]
    concurrent = throughput[("YCSB-C", 4, 4)]
    assert concurrent > single, (
        f"4 workers not faster than 1 on YCSB-C/4 shards: {concurrent:.0f} vs {single:.0f}"
    )
    # Every mix must gain something from concurrency at 4 shards.
    for label, _ in WORKLOADS:
        assert throughput[(label, 4, 4)] > throughput[(label, 4, 1)], (
            f"{label} did not scale with workers: {series[label]}"
        )
