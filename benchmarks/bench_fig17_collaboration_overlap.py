"""Figure 17 — diverse-group collaboration: effect of the overlap ratio.

Several groups start from the same base dataset and each applies its own
workload; a fraction of the written records (the *overlap ratio*) is
identical across groups.  The figure reports storage usage, number of
nodes, the deduplication ratio and the node sharing ratio as the overlap
ratio grows.

Expected shape (paper): all four metrics improve with overlap for every
structure; MPT reaches the highest deduplication and sharing ratios
(small nodes, small update footprint), POS-Tree beats the baseline thanks
to content-defined chunking, and MBT trails the other SIRI structures
because its few, large, ever-growing buckets limit the number of
shareable pages.
"""

from common import INDEX_NAMES, make_index, report_series, scaled
from repro.core.metrics import storage_breakdown
from repro.storage.memory import InMemoryNodeStore
from repro.workloads.collaboration import CollaborationWorkload

OVERLAP_RATIOS = [0.1, 0.4, 0.7, 1.0]
GROUPS = 6
BASE_RECORDS = scaled(2_000)
OPERATIONS_PER_GROUP = scaled(6_000)
BATCH_SIZE = scaled(2_000)


def run_collaboration(index_name: str, overlap: float):
    """Run the multi-group scenario for one index; return its storage breakdown."""
    workload = CollaborationWorkload(
        base_records=BASE_RECORDS, group_count=GROUPS,
        operations_per_group=OPERATIONS_PER_GROUP, overlap_ratio=overlap,
        batch_size=BATCH_SIZE, seed=171,
    )
    store = InMemoryNodeStore()
    index = make_index(index_name, store, dataset_size=BASE_RECORDS, value_size=256)
    base = index.from_items(workload.base_dataset())
    snapshots = [base]
    for group, batches in workload.all_groups():
        snapshot = base
        for batch in batches:
            snapshot = snapshot.update(batch)
        snapshots.append(snapshot)
    breakdown = storage_breakdown(snapshots)
    return breakdown, store


def run_experiment():
    storage_mb = {name: [] for name in INDEX_NAMES}
    node_counts = {name: [] for name in INDEX_NAMES}
    dedup_ratios = {name: [] for name in INDEX_NAMES}
    sharing_ratios = {name: [] for name in INDEX_NAMES}
    for overlap in OVERLAP_RATIOS:
        for name in INDEX_NAMES:
            breakdown, store = run_collaboration(name, overlap)
            storage_mb[name].append(round(store.total_bytes() / 1e6, 2))
            node_counts[name].append(len(store))
            dedup_ratios[name].append(round(breakdown.deduplication_ratio, 3))
            sharing_ratios[name].append(round(breakdown.node_sharing_ratio, 3))
    return storage_mb, node_counts, dedup_ratios, sharing_ratios


def test_fig17_collaboration_overlap(benchmark):
    storage_mb, node_counts, dedup_ratios, sharing_ratios = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1)
    x_label = "Overlap ratio"
    x_values = [f"{int(o * 100)}%" for o in OVERLAP_RATIOS]
    report_series("fig17a_collab_storage", "Figure 17(a): storage usage (MB) vs overlap ratio",
                  x_label, x_values, storage_mb)
    report_series("fig17b_collab_nodes", "Figure 17(b): #nodes vs overlap ratio",
                  x_label, x_values, node_counts)
    report_series("fig17c_collab_dedup", "Figure 17(c): deduplication ratio vs overlap ratio",
                  x_label, x_values, dedup_ratios)
    report_series("fig17d_collab_sharing", "Figure 17(d): node sharing ratio vs overlap ratio",
                  x_label, x_values, sharing_ratios)

    for name in INDEX_NAMES:
        # Paper shape: both ratios improve as the overlap grows.
        assert dedup_ratios[name][-1] > dedup_ratios[name][0]
        assert sharing_ratios[name][-1] > sharing_ratios[name][0]
    # Paper shape: MPT reaches the highest dedup/sharing ratios at high overlap;
    # POS-Tree matches or beats the MVMB+-Tree baseline.
    assert dedup_ratios["MPT"][-1] >= dedup_ratios["POS-Tree"][-1] - 0.02
    assert dedup_ratios["POS-Tree"][-1] >= dedup_ratios["MVMB+-Tree"][-1] - 0.02
    assert sharing_ratios["POS-Tree"][-1] >= sharing_ratios["MVMB+-Tree"][-1] - 0.02
