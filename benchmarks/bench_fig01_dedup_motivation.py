"""Figure 1 — motivation: storage and transmission time, raw vs deduplicated.

The paper's opening experiment stores a 100 000-record dataset receiving
1 000 record updates per modification and plots (i) the storage needed when
every version is kept separately vs with record/page deduplication, and
(ii) the time to transmit the versions over a 1 Gbit/s link.

Here the same experiment runs at laptop scale (sizes under
``REPRO_BENCH_SCALE``): versions are produced with a POS-Tree over a
content-addressed store, "raw" accumulates every version's pages
separately, "deduplicated" stores shared pages once, and transmission time
is modelled as bytes / 125 MB/s (1 Gigabit Ethernet, as in the paper's
footnote).

Expected shape (paper): raw storage and time grow steeply and linearly;
deduplicated storage and time stay almost flat — an order-of-magnitude gap
by a few hundred versions.
"""

from common import make_index, report_series, scaled
from repro.core.metrics import incremental_version_growth
from repro.storage.memory import InMemoryNodeStore
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload

GIGABIT_BYTES_PER_SECOND = 125e6


def run_experiment():
    record_count = scaled(20_000)
    updates_per_version = scaled(1_000)
    version_counts = [10, 20, 30, 40, 50]

    workload = YCSBWorkload(YCSBConfig(record_count=record_count, seed=42))
    store = InMemoryNodeStore()
    index = make_index("POS-Tree", store, dataset_size=record_count)

    snapshot = index.from_items(workload.initial_dataset())
    versions = [snapshot]
    for batch in workload.version_stream(max(version_counts), updates_per_version):
        snapshot = snapshot.update(batch)
        versions.append(snapshot)

    growth = incremental_version_growth(versions)
    raw_gb, dedup_gb, raw_seconds, dedup_seconds = [], [], [], []
    for count in version_counts:
        _, raw_bytes, dedup_bytes = growth[count]
        raw_gb.append(raw_bytes / 1e9)
        dedup_gb.append(dedup_bytes / 1e9)
        raw_seconds.append(raw_bytes / GIGABIT_BYTES_PER_SECOND)
        dedup_seconds.append(dedup_bytes / GIGABIT_BYTES_PER_SECOND)

    report_series(
        "fig01_dedup_motivation",
        f"Figure 1: storage and transfer time vs #versions "
        f"({record_count} records, {updates_per_version} updates/version)",
        "#Versions",
        version_counts,
        {
            "Storage-Raw (GB)": raw_gb,
            "Storage-Dedup (GB)": dedup_gb,
            "Time-Raw (s @1GbE)": raw_seconds,
            "Time-Dedup (s @1GbE)": dedup_seconds,
        },
    )
    return raw_gb, dedup_gb


def test_fig01_dedup_motivation(benchmark):
    raw_gb, dedup_gb = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # The qualitative claim of Figure 1: deduplication keeps storage far below raw.
    assert dedup_gb[-1] < raw_gb[-1] / 2
