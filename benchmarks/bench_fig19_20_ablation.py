"""Figures 19 and 20 — breakdown analysis: disabling SIRI properties in POS-Tree.

Figure 19 disables the Structurally Invariant property (forced positional
splits instead of purely content-defined boundaries); Figure 20 disables
the Recursively Identical property (every version copies every node).  The
multi-group overlap workload of Figure 17 is re-run and the deduplication
and node sharing ratios are compared against the unmodified POS-Tree.

Expected shape (paper): disabling Structurally Invariant lowers both
ratios by double-digit percentage points; disabling Recursively Identical
collapses both ratios to zero.
"""

import random

from common import make_index, report_series, scaled
from repro.core.metrics import storage_breakdown
from repro.indexes.ablation import NonRecursivelyIdenticalPOSTree, NonStructurallyInvariantPOSTree
from repro.storage.memory import InMemoryNodeStore
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload

OVERLAP_RATIOS = [0.2, 0.5, 0.8, 1.0]
GROUPS = 5
BASE_RECORDS = scaled(1_500)
OPERATIONS_PER_GROUP = scaled(4_000)
BATCH_SIZE = scaled(1_000)

VARIANTS = {
    "POS-Tree": lambda store: make_index("POS-Tree", store, value_size=256),
    "non-structurally-invariant": lambda store: NonStructurallyInvariantPOSTree(
        store, target_node_size=1024, estimated_entry_size=272),
    "non-recursively-identical": lambda store: NonRecursivelyIdenticalPOSTree(
        store, target_node_size=1024, estimated_entry_size=272),
}


def group_workloads(overlap: float):
    """Per-group record streams sharing ``overlap`` of their content.

    Every group writes the same *shared* records plus its own private ones,
    interleaved over the same key space, and each group receives them in a
    different order.  Structurally invariant indexes end up sharing the pages
    holding the shared records no matter the order; the ablated variants do
    not — which is exactly what Figures 19 and 20 isolate.
    """
    workload = YCSBWorkload(YCSBConfig(record_count=BASE_RECORDS, seed=191))
    base = workload.initial_dataset()
    shared_count = int(OPERATIONS_PER_GROUP * overlap)
    private_count = OPERATIONS_PER_GROUP - shared_count
    shared = {f"op{i:08d}".encode(): (b"shared-%08d-" % i) * 16 for i in range(shared_count)}

    groups = []
    for group in range(GROUPS):
        private = {
            f"op{i:08d}-g{group:02d}".encode(): (b"private-%02d-%08d-" % (group, i)) * 12
            for i in range(private_count)
        }
        records = list(shared.items()) + list(private.items())
        random.Random(191 + group).shuffle(records)
        groups.append(records)
    return base, groups


def run_variant(build, overlap: float):
    base_dataset, groups = group_workloads(overlap)
    store = InMemoryNodeStore()
    index = build(store)
    base = index.from_items(base_dataset)
    snapshots = [base]
    for records in groups:
        snapshot = base
        for start in range(0, len(records), BATCH_SIZE):
            snapshot = snapshot.update(dict(records[start : start + BATCH_SIZE]))
        snapshots.append(snapshot)
    return storage_breakdown(snapshots)


def run_experiment():
    dedup = {name: [] for name in VARIANTS}
    sharing = {name: [] for name in VARIANTS}
    for overlap in OVERLAP_RATIOS:
        for name, build in VARIANTS.items():
            breakdown = run_variant(build, overlap)
            dedup[name].append(round(breakdown.deduplication_ratio, 3))
            sharing[name].append(round(breakdown.node_sharing_ratio, 3))
    return dedup, sharing


def test_fig19_20_property_ablation(benchmark):
    dedup, sharing = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    x_values = [f"{int(o * 100)}%" for o in OVERLAP_RATIOS]
    report_series("fig19_ablation_dedup",
                  "Figures 19(a)/20(a): deduplication ratio vs overlap ratio "
                  "(POS-Tree vs property-disabled variants)",
                  "Overlap ratio", x_values, dedup)
    report_series("fig19_ablation_sharing",
                  "Figures 19(b)/20(b): node sharing ratio vs overlap ratio "
                  "(POS-Tree vs property-disabled variants)",
                  "Overlap ratio", x_values, sharing)

    # Figure 19: losing structural invariance costs deduplication and sharing
    # (checked at the highest overlap, where the shared content dominates).
    assert dedup["non-structurally-invariant"][-1] < dedup["POS-Tree"][-1]
    assert sharing["non-structurally-invariant"][-1] < sharing["POS-Tree"][-1]
    # Figure 20: losing recursive identity eliminates page sharing entirely —
    # every version carries its own private copy of every node.
    assert dedup["non-recursively-identical"][-1] <= 0.01
    assert sharing["non-recursively-identical"][-1] <= 0.01
    assert dedup["non-recursively-identical"][-1] < dedup["non-structurally-invariant"][-1]
