"""Figure 13 — MBT lookup-latency breakdown: node loading vs leaf scanning.

The paper explains MBT's read degradation by splitting its lookup latency
into (i) the time to traverse internal nodes and load the bucket and
(ii) the time to scan the bucket contents.  The traversal part stays
constant (the tree shape never changes) while the scan part grows with the
number of records, because bucket size is N/B.

Expected shape (paper): "load" roughly flat, "scan" growing with N and
eventually dominating.
"""

import time

from common import report_series, scaled
from repro.indexes import MerkleBucketTree
from repro.storage.memory import InMemoryNodeStore
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload

RECORD_COUNTS = [scaled(2_000), scaled(4_000), scaled(8_000), scaled(16_000)]
BUCKETS = 256
PROBES = scaled(1_000)


def run_experiment():
    load_series, scan_series = [], []
    for record_count in RECORD_COUNTS:
        workload = YCSBWorkload(YCSBConfig(record_count=record_count, seed=131))
        dataset = workload.initial_dataset()
        tree = MerkleBucketTree(InMemoryNodeStore(), capacity=BUCKETS, fanout=4)
        snapshot = tree.from_items(dataset)
        probe_keys = workload.keys[:PROBES]

        load_seconds = 0.0
        scan_seconds = 0.0
        for key in probe_keys:
            bucket_index = tree.bucket_of(key)

            # Load phase: traverse the internal nodes and fetch the bucket bytes.
            start = time.perf_counter()
            digest = snapshot.root_digest
            for child_index in tree._bucket_path_indices(bucket_index):
                children = tree._deserialize_internal(tree._get_node(digest))
                digest = children[child_index]
            bucket_bytes = tree._get_node(digest)
            load_seconds += time.perf_counter() - start

            # Scan phase: decode the bucket contents and search them.
            start = time.perf_counter()
            entries = tree._deserialize_bucket(bucket_bytes)
            tree._binary_search(entries, key)
            scan_seconds += time.perf_counter() - start

        load_series.append(round(load_seconds * 1_000, 2))
        scan_series.append(round(scan_seconds * 1_000, 2))
    return load_series, scan_series


def test_fig13_mbt_breakdown(benchmark):
    load_series, scan_series = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report_series(
        "fig13_mbt_breakdown",
        f"Figure 13: MBT lookup breakdown (ms for {PROBES} lookups, {BUCKETS} buckets) — "
        "node traversal/load time vs bucket scan time",
        "#Records",
        RECORD_COUNTS,
        {"Load time (ms)": load_series, "Scan time (ms)": scan_series},
    )
    # Paper shape: the scan part grows with N (buckets hold N/B records each)
    # while the traversal/load part stays roughly constant.
    assert scan_series[-1] > 2 * scan_series[0]
    assert load_series[-1] < 4 * max(load_series[0], 1e-6)
