"""Figures 15 and 16 — storage and node counts on the real-world datasets.

Figure 15 loads the Wiki dataset as a stream of versions; Figure 16 builds
one index per Ethereum block (the blockchain storage model).  Both report
total storage and number of nodes per index.

Expected shape (paper): MPT's storage grows fastest on these datasets
because their long (and, for Ethereum, hex-encoded) keys make the trie
sparse and tall; MBT also consumes more than POS-Tree; per-block indexing
makes MBT create comparatively many nodes (a whole bucket array per
block).
"""

from common import INDEX_NAMES, make_index, report_series, scaled
from repro.blockchain import Ledger
from repro.storage.memory import InMemoryNodeStore
from repro.workloads.ethereum import EthereumDatasetGenerator
from repro.workloads.wiki import WikiDatasetGenerator

WIKI_VERSION_COUNTS = [4, 8, 12]
ETHEREUM_BLOCK_COUNTS = [4, 8, 12]


def run_wiki():
    """Total storage written while loading the Wiki version stream."""
    generator = WikiDatasetGenerator(page_count=scaled(3_000), versions=max(WIKI_VERSION_COUNTS),
                                     edits_per_version=scaled(200),
                                     new_pages_per_version=scaled(30), seed=151)
    changes = list(generator.version_stream())

    storage_mb = {name: [] for name in INDEX_NAMES}
    node_counts = {name: [] for name in INDEX_NAMES}
    for name in INDEX_NAMES:
        store = InMemoryNodeStore()
        index = make_index(name, store, dataset_size=generator.page_count, value_size=100)
        snapshot = index.from_items(generator.initial_dataset())
        loaded = 0
        for target in WIKI_VERSION_COUNTS:
            while loaded < target:
                snapshot = snapshot.update(changes[loaded].changes)
                loaded += 1
            storage_mb[name].append(round(store.total_bytes() / 1e6, 2))
            node_counts[name].append(len(store))
    return storage_mb, node_counts


def run_ethereum():
    """Total storage written while appending blocks (one index per block)."""
    generator = EthereumDatasetGenerator(blocks=max(ETHEREUM_BLOCK_COUNTS),
                                         transactions_per_block=scaled(150), seed=152)
    blocks = generator.all_blocks()

    storage_mb = {name: [] for name in INDEX_NAMES}
    node_counts = {name: [] for name in INDEX_NAMES}
    for name in INDEX_NAMES:
        store = InMemoryNodeStore()
        ledger = Ledger(index_factory=lambda n=name, s=store: make_index(
            n, s, dataset_size=generator.transactions_per_block, value_size=532))
        appended = 0
        for target in ETHEREUM_BLOCK_COUNTS:
            while appended < target:
                ledger.append_block(blocks[appended].records())
                appended += 1
            storage_mb[name].append(round(store.total_bytes() / 1e6, 2))
            node_counts[name].append(len(store))
    return storage_mb, node_counts


def test_fig15_wiki_storage(benchmark):
    storage_mb, node_counts = benchmark.pedantic(run_wiki, rounds=1, iterations=1)
    report_series("fig15a_wiki_storage", "Figure 15(a): storage (MB) vs #Wiki versions",
                  "#Versions", WIKI_VERSION_COUNTS, storage_mb)
    report_series("fig15b_wiki_nodes", "Figure 15(b): #nodes vs #Wiki versions",
                  "#Versions", WIKI_VERSION_COUNTS, node_counts)
    # Paper shape: MPT consumes more storage than POS-Tree on Wiki data (long
    # URL keys make the trie sparse), and so does the per-key-updating baseline.
    assert storage_mb["MPT"][-1] > storage_mb["POS-Tree"][-1]
    assert storage_mb["MVMB+-Tree"][-1] > storage_mb["POS-Tree"][-1]


def test_fig16_ethereum_storage(benchmark):
    storage_mb, node_counts = benchmark.pedantic(run_ethereum, rounds=1, iterations=1)
    report_series("fig16a_ethereum_storage", "Figure 16(a): storage (MB) vs #blocks",
                  "#Blocks", ETHEREUM_BLOCK_COUNTS, storage_mb)
    report_series("fig16b_ethereum_nodes", "Figure 16(b): #nodes vs #blocks",
                  "#Blocks", ETHEREUM_BLOCK_COUNTS, node_counts)
    # Paper shape: MPT consumes clearly more storage than POS-Tree (64-byte hex
    # keys make the trie sparse), and MBT is also less efficient per block.
    assert storage_mb["MPT"][-1] > 1.5 * storage_mb["POS-Tree"][-1]
    assert storage_mb["MBT"][-1] > storage_mb["POS-Tree"][-1]
