"""Wire-server tail latency and throughput vs client process count.

The paper's system is a *service*: its evaluation measures operations
arriving over a network front door, not in-process calls.  This
benchmark closes that gap for the reproduction.  A 4-shard server runs
in its own OS process; {1, 4, 16} client processes (real sockets, real
frames, one `RemoteRepository` each) replay the same deterministic
YCSB-style mixed stream, and we record ops/s plus p50/p99 per-operation
latency at each client count — the tail-latency-vs-concurrency curve
that motivates the server's bounded admission queues.

Before the measured runs, a socket-level fuzz stage fires thousands of
random/mutated frames at the live server (the over-the-wire half of the
codec-hardening acceptance criterion, complementing the in-process
fuzzer in ``tests/server/test_protocol.py``) and asserts the server is
still fully serviceable afterwards.

The full run writes ``BENCH_server.json`` at the repository root (the
checked-in result artifact) plus a human-readable table under
``benchmarks/results/``.  ``--quick`` is the CI smoke configuration:
smaller counts, results under ``*_quick`` names, no JSON rewrite.

Run directly::

    PYTHONPATH=src python benchmarks/bench_server.py [--quick]
"""

import argparse
import json
import os
import random
import socket
import time

from common import report
from repro.analysis.report import format_table
from repro.server import protocol
from repro.server.client import RemoteRepository
from repro.server.protocol import Op, Request
from repro.workloads.ycsb import YCSBConfig, YCSBRemoteDriver, YCSBWorkload

NUM_SHARDS = 4
QUEUE_CAPACITY = 128
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
JSON_PATH = os.path.join(REPO_ROOT, "BENCH_server.json")


# ---------------------------------------------------------------------------
# Server subprocess
# ---------------------------------------------------------------------------

def _serve(conn, num_shards: int, queue_capacity: int) -> None:
    """Run a 4-shard in-memory server until the parent says stop.

    Module-level so multiprocessing can spawn it.  Sends the bound
    address through ``conn``, then blocks; any message triggers a
    graceful drain, after which the final metrics snapshot is sent back.
    """
    from repro.indexes import POSTree
    from repro.server.server import RepositoryServer, ServerThread
    from repro.service import VersionedKVService
    from repro.storage.memory import InMemoryNodeStore

    def make_index(store=None, **_overrides):
        backing = store if store is not None else InMemoryNodeStore()
        return POSTree(backing, target_node_size=1024, estimated_entry_size=272)

    service = VersionedKVService(make_index, num_shards=num_shards,
                                 batch_size=256)
    server = RepositoryServer(service, queue_capacity=queue_capacity)
    thread = ServerThread(server)
    try:
        conn.send(thread.start())
        conn.recv()  # parent's stop signal
    finally:
        thread.stop()
        conn.send(server.metrics.snapshot())
        service.close()


class ServerProcess:
    """Context manager owning the benchmark's server subprocess."""

    def __init__(self, num_shards: int = NUM_SHARDS,
                 queue_capacity: int = QUEUE_CAPACITY):
        import multiprocessing

        context = multiprocessing.get_context()
        self._conn, child_conn = context.Pipe()
        self.process = context.Process(
            target=_serve, args=(child_conn, num_shards, queue_capacity),
            name="bench-server")
        self.process.start()
        self.address = self._conn.recv()
        self.final_metrics = None

    def alive(self) -> bool:
        return self.process.is_alive()

    def stop(self):
        if self.process.is_alive():
            self._conn.send("stop")
            self.final_metrics = self._conn.recv()
        self.process.join(timeout=60)
        return self.final_metrics

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.stop()


# ---------------------------------------------------------------------------
# Socket-level fuzz stage
# ---------------------------------------------------------------------------

def _fuzz_body(rng: random.Random, samples) -> bytes:
    """A random or mutated message body (framing added by the caller)."""
    if rng.random() < 0.5:
        return bytes(rng.randrange(256) for _ in range(rng.randrange(0, 96)))
    raw = bytearray(samples[rng.randrange(len(samples))])
    mutations = rng.randrange(1, 4)
    for _ in range(mutations):
        choice = rng.randrange(3)
        if choice == 0 and raw:
            raw[rng.randrange(len(raw))] ^= 1 << rng.randrange(8)
        elif choice == 1:
            del raw[rng.randrange(len(raw) + 1):]
        elif raw:
            pos = rng.randrange(len(raw))
            del raw[pos:pos + rng.randrange(1, 4)]
    return bytes(raw)


def fuzz_stage(address, frames: int, seed: int = 0xBADF00D) -> dict:
    """Fire ``frames`` hostile frames at a live server; assert it survives.

    Most payloads are correctly framed bodies of garbage (every one
    reaches the request decoder); a small fraction attack the framing
    layer itself (hostile declared lengths, raw unframed bytes).  The
    server may answer with an error frame and hang up per its contract —
    the stage reconnects and keeps going.  Afterwards the server must
    still answer a put/get round trip.
    """
    rng = random.Random(seed)
    samples = [protocol.encode_request(r) for r in (
        Request(op=Op.GET, request_id=1, key=b"fuzz"),
        Request(op=Op.PUT_MANY, request_id=2, items=[(b"k", b"v")]),
        Request(op=Op.SCAN, request_id=3, limit=4),
        Request(op=Op.COMMIT, request_id=4, message="fuzz"),
        Request(op=Op.PROVE, request_id=5, key=b"fuzz"),
    )]

    def connect():
        sock = socket.create_connection(address, timeout=5)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    sent = reconnects = 0
    sock = connect()
    started = time.perf_counter()
    while sent < frames:
        if rng.random() < 0.02:
            # Framing-layer attack: hostile length prefix or naked garbage.
            payload = (rng.randrange(1 << 32).to_bytes(4, "big")
                       + bytes(rng.randrange(256) for _ in range(8)))
        else:
            payload = protocol.encode_frame(_fuzz_body(rng, samples))
        try:
            sock.sendall(payload)
            sock.settimeout(0.01)
            if not sock.recv(65536):
                raise ConnectionError("closed")
        except (TimeoutError, socket.timeout):
            # Server is (correctly) waiting for the rest of a partial
            # frame; this connection is desynced on purpose — recycle it.
            sock.close()
            sock = connect()
            reconnects += 1
        except (ConnectionError, OSError):
            sock.close()
            sock = connect()
            reconnects += 1
        sent += 1
    sock.close()
    elapsed = time.perf_counter() - started

    # The acceptance check: the server is alive and fully serviceable.
    with RemoteRepository(*address) as remote:
        remote.put(b"post-fuzz", b"alive")
        assert remote.get(b"post-fuzz") == b"alive"
    return {"frames": sent, "reconnects": reconnects,
            "seconds": round(elapsed, 3), "server_alive": True}


# ---------------------------------------------------------------------------
# Measured runs
# ---------------------------------------------------------------------------

def run_grid(address, client_counts, record_count: int, operation_count: int):
    """Load once, then measure the same stream at each client count."""
    config = YCSBConfig(record_count=record_count,
                        operation_count=operation_count,
                        write_ratio=0.5, theta=0.5, seed=97)
    workload = YCSBWorkload(config)
    driver = YCSBRemoteDriver(workload, *address)
    load_counters = driver.load()
    rows, results = [], []
    for clients in client_counts:
        counters = driver.run(clients, operation_count)
        ops_per_sec = counters.throughput()
        extra = counters.extra
        rows.append([
            clients, counters.operations, round(ops_per_sec),
            round(extra["lat_p50"] * 1e3, 3), round(extra["lat_p99"] * 1e3, 3),
            round(extra["lat_mean"] * 1e3, 3), round(counters.elapsed_seconds, 2),
        ])
        results.append({
            "clients": clients,
            "operations": counters.operations,
            "ops_per_sec": round(ops_per_sec, 1),
            "p50_ms": round(extra["lat_p50"] * 1e3, 4),
            "p90_ms": round(extra["lat_p90"] * 1e3, 4),
            "p99_ms": round(extra["lat_p99"] * 1e3, 4),
            "mean_ms": round(extra["lat_mean"] * 1e3, 4),
            "max_ms": round(extra["lat_max"] * 1e3, 4),
            "elapsed_seconds": round(counters.elapsed_seconds, 3),
        })
    return rows, results, {
        "record_count": record_count,
        "operation_count": operation_count,
        "write_ratio": config.write_ratio,
        "theta": config.theta,
        "load_records": load_counters.operations,
        "load_seconds": round(load_counters.elapsed_seconds, 3),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: fewer clients/ops, no JSON rewrite")
    args = parser.parse_args(argv)
    if args.quick:
        client_counts, record_count, operation_count = [1, 4], 400, 600
        fuzz_frames, suffix = 2_000, "_quick"
    else:
        client_counts, record_count, operation_count = [1, 4, 16], 2_000, 4_000
        fuzz_frames, suffix = 10_000, ""

    with ServerProcess() as server:
        fuzz = fuzz_stage(server.address, fuzz_frames)
        assert server.alive(), "server process died during the fuzz stage"
        rows, results, workload_info = run_grid(
            server.address, client_counts, record_count, operation_count)
        assert server.alive(), "server process died during the measured runs"
    metrics = server.final_metrics or {}
    queues = metrics.get("queues", [])
    assert all(q["depth"] == 0 for q in queues), "queues did not drain"

    body = format_table(
        ["Clients", "Ops", "Ops/s", "p50 ms", "p99 ms", "mean ms", "Secs"],
        rows)
    body += (f"\nfuzz: {fuzz['frames']} hostile frames, "
             f"{fuzz['reconnects']} reconnects, server alive: "
             f"{fuzz['server_alive']}\n")
    report(f"bench_server{suffix}",
           f"Wire server: YCSB over sockets, {NUM_SHARDS} shards "
           "(50% writes, Zipf 0.5)", body)

    if not args.quick:
        payload = {
            "benchmark": "bench_server",
            "description": "p50/p99 latency and ops/s vs client process "
                           "count against a 4-shard wire server",
            "num_shards": NUM_SHARDS,
            "queue_capacity": QUEUE_CAPACITY,
            "workload": workload_info,
            "fuzz": fuzz,
            "results": results,
            "server_metrics": {
                "connections_opened": metrics.get("connections_opened"),
                "protocol_errors": metrics.get("protocol_errors"),
                "total_admitted": sum(q["admitted"] for q in queues),
                "total_rejected_busy": sum(q["rejected_busy"] for q in queues),
                "peak_queue_depth": max((q["peak_depth"] for q in queues),
                                        default=0),
            },
        }
        with open(JSON_PATH, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {JSON_PATH}")
    return 0


def test_server_bench_quick_smoke():
    """Pytest entry point (every bench script runs under pytest too)."""
    assert main(["--quick"]) == 0


if __name__ == "__main__":
    raise SystemExit(main())
