"""Service-layer scaling — YCSB A/B/C against the sharded versioned-KV service.

This benchmark is not a paper figure: it evaluates the serving layer
(:mod:`repro.service`) added on top of the paper's index structures.  Two
questions are answered, both on the POS-Tree (the paper's headline SIRI
candidate):

1. **Sharding** — how does aggregate throughput change as the key space is
   hash-partitioned over 1/2/4/8 index shards?  Expected shape: throughput
   improves with the shard count because (a) every shard's tree is a
   factor N smaller, shortening root→leaf paths for lookups and
   copy-on-write rewrites, and (b) each shard buffers a full write batch
   of its own, so the effective coalescing window grows with N.
2. **Write coalescing** — how many node (page) writes does one operation
   cost when writes flush one-by-one versus through the per-shard
   coalescing batcher?  Expected shape: batched flushes amortize the
   bottom-up rebuild across the whole batch, collapsing nodes-written per
   operation by orders of magnitude (the service-layer restatement of the
   paper's Table 2 batching).

Workload mixes follow the standard YCSB presets over a Zipfian (θ = 0.9)
request stream: A = 50 % writes, B = 5 % writes, C = read-only.
"""

import functools

import pytest

from common import report_series, report_table, scaled
from repro.indexes import POSTree
from repro.service import VersionedKVService
from repro.workloads.ycsb import YCSBConfig, YCSBServiceDriver, YCSBWorkload

RECORD_COUNT = scaled(16_000)
OPERATION_COUNT = scaled(8_000)
#: Per-shard flush threshold: small enough that every shard count flushes
#: repeatedly during the run, so the 1/N flush-amortization effect is on
#: the measured path (not just the final drain).
BATCH_SIZE = 500
SHARD_COUNTS = [1, 2, 4, 8]
THETA = 0.9
#: (label, write ratio) per standard YCSB mix.
WORKLOADS = [("YCSB-A", 0.5), ("YCSB-B", 0.05), ("YCSB-C", 0.0)]
#: Timing repetitions per configuration.  Repetitions are interleaved
#: round-robin across configurations and the best run is kept, so a slow
#: phase of the host machine cannot bias one shard count systematically.
REPETITIONS = 3


def make_service(num_shards: int, batch_size: int = BATCH_SIZE) -> VersionedKVService:
    """A POS-Tree-backed service tuned like the paper tunes the index (~1 KB nodes)."""
    factory = functools.partial(POSTree, target_node_size=1024, estimated_entry_size=272)
    return VersionedKVService(factory, num_shards=num_shards, batch_size=batch_size)


def run_config(write_ratio: float, num_shards: int):
    """Load + run one (mix, shard count) configuration once; return counters."""
    workload = YCSBWorkload(YCSBConfig(
        record_count=RECORD_COUNT,
        operation_count=OPERATION_COUNT,
        write_ratio=write_ratio,
        theta=THETA,
        batch_size=BATCH_SIZE,
        seed=71,
    ))
    driver = YCSBServiceDriver(workload)
    service = make_service(num_shards)
    driver.load(service)
    return driver.run(service)


def run_scaling():
    """The full shard-count sweep over all three mixes (interleaved best-of)."""
    best = {}
    for repetition in range(REPETITIONS):
        for label, write_ratio in WORKLOADS:
            for num_shards in SHARD_COUNTS:
                counters = run_config(write_ratio, num_shards)
                key = (label, num_shards)
                if key not in best or counters.throughput() > best[key].throughput():
                    best[key] = counters
    series = {label: [] for label, _ in WORKLOADS}
    detail_rows = []
    for label, _ in WORKLOADS:
        for num_shards in SHARD_COUNTS:
            counters = best[(label, num_shards)]
            series[label].append(round(counters.throughput()))
            detail_rows.append([
                label,
                num_shards,
                round(counters.throughput()),
                round(counters.nodes_created / counters.operations, 3),
                round(counters.nodes_read / counters.operations, 3),
                f"{counters.cache.hit_ratio:.3f}",
            ])
    return series, detail_rows


def test_service_shard_scaling(benchmark):
    series, detail_rows = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    report_series(
        "service_scaling_throughput",
        f"Service scaling: aggregate throughput (ops/s) vs shard count "
        f"({RECORD_COUNT} records, {OPERATION_COUNT} ops, θ={THETA}, POS-Tree)",
        "#Shards",
        SHARD_COUNTS,
        series,
    )
    report_table(
        "service_scaling_detail",
        "Service scaling detail: per-config node I/O and cache hit ratio",
        ["Mix", "Shards", "Ops/s", "NodesWritten/op", "NodesRead/op", "CacheHitRatio"],
        detail_rows,
    )
    # Acceptance shape: YCSB-A aggregate throughput improves monotonically
    # from 1 to 4 shards (smaller trees + wider coalescing windows).
    ycsb_a = series["YCSB-A"]
    assert ycsb_a[0] < ycsb_a[1] < ycsb_a[2], f"YCSB-A not monotonic 1→4: {ycsb_a}"
    # The read-heavy mixes must not degrade when sharded.
    for label in ("YCSB-B", "YCSB-C"):
        assert series[label][2] > series[label][0] * 0.9, f"{label} regressed: {series[label]}"


# ---------------------------------------------------------------------------
# Write-coalescing batcher: nodes written per operation
# ---------------------------------------------------------------------------

COALESCE_RECORDS = scaled(8_000)
COALESCE_OPS = scaled(1_500)
COALESCE_BATCHES = [1, 100, 1_000]


def run_coalescing():
    """nodes_written per op at increasing flush thresholds (1 = unbatched)."""
    rows = []
    per_op = {}
    for batch_size in COALESCE_BATCHES:
        workload = YCSBWorkload(YCSBConfig(
            record_count=COALESCE_RECORDS,
            operation_count=COALESCE_OPS,
            write_ratio=0.5,
            theta=THETA,
            batch_size=BATCH_SIZE,
            seed=71,
        ))
        driver = YCSBServiceDriver(workload)
        # Load with a batched window regardless of the configuration under
        # test, then switch the flush threshold so only the measured run
        # phase differs between configurations.
        service = make_service(num_shards=4, batch_size=BATCH_SIZE)
        driver.load(service)
        service.batcher.flush_threshold = batch_size
        before = service.metrics()
        counters = driver.run(service)
        after = service.metrics()
        per_op[batch_size] = counters.nodes_created / counters.operations
        # Run-phase coalescing only: the load phase (distinct keys, no
        # coalescing) would otherwise dilute the denominator ~6x.
        run_writes = (after.puts + after.removes) - (before.puts + before.removes)
        run_coalesced = after.coalesced_ops - before.coalesced_ops
        rows.append([
            batch_size,
            round(counters.throughput()),
            counters.nodes_created,
            round(per_op[batch_size], 3),
            round(run_coalesced / run_writes if run_writes else 0.0, 3),
        ])
    return rows, per_op


def test_write_coalescing_amortization(benchmark):
    rows, per_op = benchmark.pedantic(run_coalescing, rounds=1, iterations=1)
    report_table(
        "service_write_coalescing",
        f"Write coalescing (YCSB-A, 4 shards, {COALESCE_RECORDS} records): "
        f"node writes per operation vs flush threshold",
        ["FlushThreshold", "Ops/s", "NodesWritten", "NodesWritten/op", "CoalescingRatio"],
        rows,
    )
    # Acceptance shape: the coalescing batcher cuts node writes per
    # operation by at least an order of magnitude versus single-op flushes.
    unbatched = per_op[1]
    batched = per_op[COALESCE_BATCHES[-1]]
    assert batched < unbatched / 10, (
        f"batching saved too little: unbatched={unbatched:.3f}, batched={batched:.3f}"
    )
