"""Figure 7 — throughput on the real-world datasets (Wiki and Ethereum).

Panel (a): read/write throughput over the Wikipedia-abstract dataset, the
data loaded as a stream of versions and then probed with uniformly chosen
keys.  Panel (b): the Ethereum transaction workload, where *writes* append
whole blocks (one index built from scratch per block) and *reads* scan the
block list and traverse the block's index.

Expected shape (paper): results mirror the YCSB experiment for Wiki; for
Ethereum, POS-Tree wins the write side clearly because its bottom-up
batched build touches every node once, and read throughput is lower than
write throughput for all candidates because the block scan dominates.
"""

import time

from common import INDEX_NAMES, make_index, report_table, scaled, throughput
from repro.blockchain import Ledger
from repro.storage.memory import InMemoryNodeStore
from repro.workloads.ethereum import EthereumDatasetGenerator
from repro.workloads.wiki import WikiDatasetGenerator


def run_wiki_panel():
    generator = WikiDatasetGenerator(
        page_count=scaled(3_000), versions=10,
        edits_per_version=scaled(150), new_pages_per_version=20, seed=71,
    )
    read_keys = generator.read_keys(scaled(2_000))
    write_stream = list(generator.version_stream())

    rows = []
    for name in INDEX_NAMES:
        index = make_index(name, InMemoryNodeStore(), dataset_size=generator.page_count,
                           value_size=100)
        snapshot = index.from_items(generator.initial_dataset())

        start = time.perf_counter()
        for key in read_keys:
            snapshot.get(key)
        read_seconds = time.perf_counter() - start

        write_operations = 0
        start = time.perf_counter()
        for version in write_stream:
            snapshot = snapshot.update(version.changes)
            write_operations += len(version.changes)
        write_seconds = time.perf_counter() - start

        rows.append([
            name,
            round(throughput(len(read_keys), read_seconds)),
            round(throughput(write_operations, write_seconds)),
        ])
    return rows


def run_ethereum_panel():
    generator = EthereumDatasetGenerator(
        blocks=max(4, scaled(12)), transactions_per_block=scaled(150), seed=72,
    )
    blocks = generator.all_blocks()
    probe_transactions = [block.transactions[i] for block in blocks
                          for i in range(0, len(block.transactions), 10)]

    rows = []
    for name in INDEX_NAMES:
        store = InMemoryNodeStore()
        ledger = Ledger(index_factory=lambda n=name, s=store: make_index(
            n, s, dataset_size=generator.transactions_per_block, value_size=532))

        start = time.perf_counter()
        for block in blocks:
            ledger.append_block(block.records())
        write_seconds = time.perf_counter() - start
        total_written = ledger.total_transactions()

        start = time.perf_counter()
        for tx in probe_transactions:
            ledger.get_transaction(tx.key)
        read_seconds = time.perf_counter() - start

        rows.append([
            name,
            round(throughput(len(probe_transactions), read_seconds)),
            round(throughput(total_written, write_seconds)),
        ])
    return rows


def test_fig07a_wiki_throughput(benchmark):
    rows = benchmark.pedantic(run_wiki_panel, rounds=1, iterations=1)
    report_table("fig07a_wiki_throughput",
                 "Figure 7(a): throughput on the Wiki dataset (ops/s)",
                 ["index", "read ops/s", "write ops/s"], rows)
    by_name = {row[0]: row for row in rows}
    assert by_name["POS-Tree"][2] > by_name["MPT"][2]


def test_fig07b_ethereum_throughput(benchmark):
    rows = benchmark.pedantic(run_ethereum_panel, rounds=1, iterations=1)
    report_table("fig07b_ethereum_throughput",
                 "Figure 7(b): throughput on Ethereum transactions (ops/s)",
                 ["index", "read ops/s", "write ops/s"], rows)
    by_name = {row[0]: row for row in rows}
    # Paper shape: POS-Tree wins writes (bottom-up per-block builds).
    assert by_name["POS-Tree"][2] >= max(by_name["MPT"][2], by_name["MVMB+-Tree"][2])
    # Paper shape: reads are slower than writes (block scanning dominates).
    assert by_name["POS-Tree"][1] < by_name["POS-Tree"][2]
