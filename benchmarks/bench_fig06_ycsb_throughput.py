"""Figure 6 — YCSB throughput vs dataset size for every (θ, write-ratio) panel.

The paper's Figure 6 has nine panels: Zipfian skew θ ∈ {0, 0.5, 0.9} ×
write ratio ∈ {0, 0.5, 1}, each plotting throughput (operations/second)
against the number of records for POS-Tree, MBT, MPT and the MVMB+-Tree
baseline.

Expected shape (paper): throughput decreases as the dataset grows for all
indexes; POS-Tree tracks (reads) or beats (writes, thanks to batching) the
baseline; MPT is the slowest; MBT starts fastest on reads but degrades as
its buckets grow; skew (θ) has little effect.
"""

import pytest

from common import (
    INDEX_NAMES,
    load_in_batches,
    make_index,
    report_series,
    run_read_workload,
    run_write_workload,
    scaled,
    throughput,
)
from repro.storage.memory import InMemoryNodeStore
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload

RECORD_COUNTS = [scaled(1_000), scaled(2_000), scaled(4_000), scaled(8_000)]
OPERATION_COUNT = scaled(2_000)
BATCH_SIZE = scaled(1_000)
PANELS = [(0.0, 0.0), (0.0, 0.5), (0.0, 1.0), (0.5, 0.5), (0.9, 0.0), (0.9, 1.0)]


def run_panel(theta: float, write_ratio: float):
    """One Figure-6 panel: throughput vs #records for every index."""
    series = {name: [] for name in INDEX_NAMES}
    for record_count in RECORD_COUNTS:
        workload = YCSBWorkload(YCSBConfig(
            record_count=record_count,
            operation_count=OPERATION_COUNT,
            write_ratio=write_ratio,
            theta=theta,
            batch_size=BATCH_SIZE,
            seed=61,
        ))
        dataset = workload.initial_dataset()
        operations = list(workload.operations())
        for name in INDEX_NAMES:
            index = make_index(name, InMemoryNodeStore(), dataset_size=record_count)
            snapshot, _ = load_in_batches(index, dataset, BATCH_SIZE)

            read_keys = [op.key for op in operations if not op.is_write]
            write_batches = []
            pending = {}
            for op in operations:
                if op.is_write:
                    pending[op.key] = op.value
                    if len(pending) >= BATCH_SIZE:
                        write_batches.append(pending)
                        pending = {}
            if pending:
                write_batches.append(pending)

            seconds = 0.0
            if read_keys:
                seconds += run_read_workload(snapshot, read_keys)
            if write_batches:
                _, _, write_seconds = run_write_workload(snapshot, write_batches)
                seconds += write_seconds
            series[name].append(round(throughput(len(operations), seconds)))
    return series


@pytest.mark.parametrize("theta,write_ratio", PANELS,
                         ids=[f"theta={t}-write={w}" for t, w in PANELS])
def test_fig06_ycsb_throughput(benchmark, theta, write_ratio):
    series = benchmark.pedantic(run_panel, args=(theta, write_ratio), rounds=1, iterations=1)
    report_series(
        f"fig06_ycsb_theta{theta}_write{write_ratio}",
        f"Figure 6 panel (θ={theta}, write ratio={write_ratio}): "
        f"throughput (ops/s) vs #records",
        "#Records",
        RECORD_COUNTS,
        series,
    )
    # Paper shape: every index slows down as the dataset grows.
    for name in INDEX_NAMES:
        assert series[name][0] >= series[name][-1] * 0.5
    if write_ratio >= 0.5:
        # Paper shape: POS-Tree's batched bottom-up writes beat MPT's per-key
        # path copies.  (For read-only panels the paper finds POS-Tree ≈
        # baseline and MPT below it; in this pure-Python port per-node decode
        # constants and measurement noise dominate the read side at laptop
        # scale, so no cross-index ordering is asserted there — the measured
        # series are still reported and discussed in EXPERIMENTS.md.)
        assert series["POS-Tree"][-1] > series["MPT"][-1]
