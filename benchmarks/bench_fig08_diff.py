"""Figure 8 — diff latency between two versions loaded in random order.

Two versions of the dataset differing in 10 % of their records are loaded
into each index (in different orders, which only SIRI structures tolerate
without losing page sharing) and then diffed; the figure reports diff
latency against the dataset size.

Expected shape (paper): all three SIRI candidates beat the MVMB+-Tree
baseline thanks to structural invariance; MBT is fastest (bucket-aligned
comparison), MPT beats POS-Tree.
"""

import random
import time

from common import INDEX_NAMES, make_index, report_series, scaled
from repro.core.diff import diff_snapshots
from repro.storage.memory import InMemoryNodeStore
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload

RECORD_COUNTS = [scaled(1_000), scaled(2_000), scaled(4_000), scaled(8_000)]
DIFF_FRACTION = 0.1


def run_experiment():
    series = {name: [] for name in INDEX_NAMES}
    for record_count in RECORD_COUNTS:
        workload = YCSBWorkload(YCSBConfig(record_count=record_count, seed=81))
        base = workload.initial_dataset()
        changed_keys = workload.keys[: int(record_count * DIFF_FRACTION)]
        other = dict(base)
        for key in changed_keys:
            other[key] = b"diff-version:" + base[key][:64]

        for name in INDEX_NAMES:
            store = InMemoryNodeStore()
            index = make_index(name, store, dataset_size=record_count)
            base_items = list(base.items())
            other_items = list(other.items())
            random.Random(1).shuffle(base_items)
            random.Random(2).shuffle(other_items)
            left = index.empty_snapshot()
            for start in range(0, len(base_items), 1_000):
                left = left.update(dict(base_items[start : start + 1_000]))
            right = index.empty_snapshot()
            for start in range(0, len(other_items), 1_000):
                right = right.update(dict(other_items[start : start + 1_000]))

            start_time = time.perf_counter()
            result = diff_snapshots(left, right)
            elapsed = time.perf_counter() - start_time
            assert len(result) == len(changed_keys)
            series[name].append(round(elapsed * 1_000, 3))
    return series


def test_fig08_diff_latency(benchmark):
    series = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report_series(
        "fig08_diff_latency",
        "Figure 8: diff latency (ms) between two versions differing by 10%",
        "#Records",
        RECORD_COUNTS,
        series,
    )
    largest = {name: values[-1] for name, values in series.items()}
    # Paper shape: SIRI candidates diff faster than the baseline because
    # structural invariance lets them prune shared pages, while the baseline's
    # order-dependent layout forces a full comparison.  (MPT also prunes, but
    # in this pure-Python port its wide branch nodes are expensive to decode,
    # so its absolute diff time can exceed the baseline's — see EXPERIMENTS.md.)
    assert largest["MBT"] < largest["MVMB+-Tree"]
    assert largest["POS-Tree"] < largest["MVMB+-Tree"]
