"""Figure 22 — Forkbase (POS-Tree) vs Noms (Prolly Tree).

Both systems manage versioned data with a content-defined-chunked Merkle
search tree; they differ in (i) how internal layers detect chunk
boundaries (POS-Tree reuses the child hashes, the Prolly Tree re-hashes a
sliding window) and (ii) the remote protocol cost (Noms' HTTP protocol is
heavier than Forkbase's binary one).  Both effects are reproduced here:
the Prolly Tree pays real extra CPU for its window hashing, and each
system's engine charges its own simulated per-request cost.

Expected shape (paper): Forkbase is faster in reads (1.4×–2.7×) and much
faster in writes (5.6×–8.4×).
"""

import time

from common import report_series, scaled, throughput
from repro.forkbase import ForkbaseClient, ForkbaseEngine, NomsProllyTree, noms_remote_cost_model
from repro.indexes import POSTree
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload

RECORD_COUNTS = [scaled(2_000), scaled(4_000), scaled(8_000)]
OPERATION_COUNT = scaled(1_000)
BATCH_SIZE = scaled(1_000)
NODE_SIZE = 4096  # Noms' default chunk size, used for both systems for fairness.

SYSTEMS = {
    "Forkbase (POS-Tree)": {
        "index": lambda store: POSTree(store, target_node_size=NODE_SIZE,
                                       estimated_entry_size=272),
        "cost_model": None,  # engine default (Forkbase binary protocol)
    },
    "Noms (Prolly Tree)": {
        "index": lambda store: NomsProllyTree(store, target_node_size=NODE_SIZE,
                                              estimated_entry_size=272),
        "cost_model": noms_remote_cost_model(),
    },
}


def run_experiment():
    read_series = {name: [] for name in SYSTEMS}
    write_series = {name: [] for name in SYSTEMS}

    for record_count in RECORD_COUNTS:
        workload = YCSBWorkload(YCSBConfig(record_count=record_count,
                                           operation_count=OPERATION_COUNT,
                                           batch_size=BATCH_SIZE, seed=221))
        dataset = workload.initial_dataset()
        read_keys = [op.key for op in workload.operations()]
        write_stream = list(workload.version_stream(2, BATCH_SIZE))

        for name, config in SYSTEMS.items():
            engine = ForkbaseEngine(cost_model=config["cost_model"])
            engine.create_dataset("bench", config["index"])
            client = ForkbaseClient(engine, "bench", config["index"])

            start_time = time.perf_counter()
            for start in range(0, record_count, BATCH_SIZE):
                client.write(dict(list(dataset.items())[start : start + BATCH_SIZE]))
            initial_load_seconds = time.perf_counter() - start_time

            engine.reset_meters()
            start_time = time.perf_counter()
            for key in read_keys:
                client.get(key)
            read_seconds = (time.perf_counter() - start_time) + engine.simulated_seconds
            read_series[name].append(round(throughput(len(read_keys), read_seconds)))

            engine.reset_meters()
            start_time = time.perf_counter()
            written = 0
            for batch in write_stream:
                client.write(batch)
                written += len(batch)
            write_seconds = (time.perf_counter() - start_time) + engine.simulated_seconds
            write_series[name].append(round(throughput(written, write_seconds)))

    return read_series, write_series


def test_fig22_forkbase_vs_noms(benchmark):
    read_series, write_series = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report_series("fig22a_forkbase_vs_noms_read",
                  "Figure 22(a): read throughput (ops/s), Forkbase vs Noms",
                  "#Records", RECORD_COUNTS, read_series)
    report_series("fig22b_forkbase_vs_noms_write",
                  "Figure 22(b): write throughput (ops/s), Forkbase vs Noms",
                  "#Records", RECORD_COUNTS, write_series)

    # Paper shape: Forkbase wins both sides, by a larger factor for writes
    # (1.4×–2.7× reads, 5.6×–8.4× writes in the paper).  Reads are compared on
    # their average because at laptop scale both systems' cached reads are
    # close enough for per-point noise to flip individual sizes.
    for i, _ in enumerate(RECORD_COUNTS):
        assert write_series["Forkbase (POS-Tree)"][i] > write_series["Noms (Prolly Tree)"][i]
    forkbase_read_mean = sum(read_series["Forkbase (POS-Tree)"]) / len(RECORD_COUNTS)
    noms_read_mean = sum(read_series["Noms (Prolly Tree)"]) / len(RECORD_COUNTS)
    assert forkbase_read_mean > noms_read_mean
    write_gap = write_series["Forkbase (POS-Tree)"][-1] / max(1, write_series["Noms (Prolly Tree)"][-1])
    read_gap = forkbase_read_mean / max(1, noms_read_mean)
    assert write_gap > read_gap
