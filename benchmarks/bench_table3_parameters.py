"""Table 3 — effect of the structure parameters on the deduplication ratio.

The paper sweeps one tuning knob per structure and reports the resulting
deduplication ratio over a multi-version workload:

* POS-Tree: the boundary pattern (i.e. the expected node size, 512–4096 B),
* MBT: the number of buckets (4 000–10 000),
* MPT: the mean key length of the dataset (10.2–13.7 bytes).

Expected shape (paper): the ratio *decreases* as POS-Tree nodes get larger
(bigger nodes are less likely to be identical), *increases* with MBT's
bucket count (smaller buckets), and *increases* with MPT's mean key length
(wider tries share more of their structure).

Note: the paper's Table 3 reports POS-Tree's ratio as increasing with node
size in the text but its numbers decrease; we follow the numbers (and the
underlying argument that fewer, larger nodes yield fewer duplicate pages).
"""

from common import report_table, scaled
from repro.core.metrics import deduplication_ratio
from repro.indexes import MerkleBucketTree, MerklePatriciaTrie, POSTree
from repro.storage.memory import InMemoryNodeStore
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload

RECORD_COUNT = scaled(6_000)
VERSIONS = 8
UPDATES_PER_VERSION = scaled(500)

POS_NODE_SIZES = [512, 1024, 2048, 4096]
MBT_BUCKET_COUNTS = [scaled(512), scaled(1_024), scaled(2_048), scaled(4_096)]
MPT_MIN_KEY_LENGTHS = [5, 8, 11, 14]


def build_versions(index, workload):
    snapshot = index.from_items(workload.initial_dataset())
    versions = [snapshot]
    for batch in workload.version_stream(VERSIONS, UPDATES_PER_VERSION):
        snapshot = snapshot.update(batch)
        versions.append(snapshot)
    return versions


def run_pos_tree_sweep():
    workload = YCSBWorkload(YCSBConfig(record_count=RECORD_COUNT, seed=31))
    rows = []
    for node_size in POS_NODE_SIZES:
        index = POSTree(InMemoryNodeStore(), target_node_size=node_size,
                        estimated_entry_size=272)
        versions = build_versions(index, workload)
        rows.append([node_size, round(deduplication_ratio(versions), 4)])
    return rows


def run_mbt_sweep():
    workload = YCSBWorkload(YCSBConfig(record_count=RECORD_COUNT, seed=32))
    rows = []
    for buckets in MBT_BUCKET_COUNTS:
        index = MerkleBucketTree(InMemoryNodeStore(), capacity=buckets, fanout=4)
        versions = build_versions(index, workload)
        rows.append([buckets, round(deduplication_ratio(versions), 4)])
    return rows


def run_mpt_sweep():
    rows = []
    for minimum_key_length in MPT_MIN_KEY_LENGTHS:
        workload = YCSBWorkload(YCSBConfig(record_count=RECORD_COUNT, seed=33,
                                           key_length_min=max(5, minimum_key_length),
                                           key_length_max=15))
        mean_key_length = sum(len(k) for k in workload.keys) / len(workload.keys)
        index = MerklePatriciaTrie(InMemoryNodeStore())
        versions = build_versions(index, workload)
        rows.append([round(mean_key_length, 1), round(deduplication_ratio(versions), 4)])
    return rows


def test_table3_pos_tree_node_size(benchmark):
    rows = benchmark.pedantic(run_pos_tree_sweep, rounds=1, iterations=1)
    report_table("table3_pos_node_size",
                 "Table 3 (left): POS-Tree deduplication ratio vs node size",
                 ["node size", "dedup ratio"], rows)
    ratios = [ratio for _, ratio in rows]
    assert ratios[0] > ratios[-1]  # bigger nodes ⇒ fewer shareable pages


def test_table3_mbt_bucket_count(benchmark):
    rows = benchmark.pedantic(run_mbt_sweep, rounds=1, iterations=1)
    report_table("table3_mbt_buckets",
                 "Table 3 (middle): MBT deduplication ratio vs #buckets",
                 ["#buckets", "dedup ratio"], rows)
    ratios = [ratio for _, ratio in rows]
    assert ratios[-1] > ratios[0]  # more buckets ⇒ smaller buckets ⇒ more sharing


def test_table3_mpt_key_length(benchmark):
    rows = benchmark.pedantic(run_mpt_sweep, rounds=1, iterations=1)
    report_table("table3_mpt_key_length",
                 "Table 3 (right): MPT deduplication ratio vs mean key length",
                 ["mean key length", "dedup ratio"], rows)
    ratios = [ratio for _, ratio in rows]
    assert ratios[-1] >= ratios[0] - 0.01  # longer keys ⇒ wider trie ⇒ more reuse
