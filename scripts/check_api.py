#!/usr/bin/env python3
"""Public-API surface lint: the exported symbols must match the snapshot.

The snapshot in ``docs/api_surface.txt`` records every name in
``repro.__all__`` together with its kind and call signature (classes also
list their public methods and properties).  CI fails when the live
surface drifts from the snapshot, so every API change is a *reviewed*
change: regenerate the snapshot — and the docs that describe it — in the
same commit that changes the surface.

Usage (from the repository root)::

    python scripts/check_api.py            # compare, exit 1 on drift
    python scripts/check_api.py --update   # rewrite the snapshot
"""

from __future__ import annotations

import difflib
import inspect
import os
import sys
import warnings

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SNAPSHOT_PATH = os.path.join(REPO_ROOT, "docs", "api_surface.txt")

HEADER = (
    "# Public API surface of the `repro` package (generated — do not edit).\n"
    "# Regenerate with: python scripts/check_api.py --update\n"
    "# CI fails when `repro.__all__` or any exported signature drifts from\n"
    "# this file without the snapshot (and docs) being updated alongside.\n"
)


def _signature(obj) -> str:
    """A stable textual signature, or '' for non-callables."""
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"


def _describe_class(name: str, cls: type) -> list:
    """One line for the class plus one per public method/property."""
    lines = [f"class {name}{_signature(cls)}"]
    members = []
    for attr_name, attr in vars(cls).items():
        if attr_name.startswith("_"):
            continue
        if isinstance(attr, property):
            members.append(f"    {attr_name}: property")
        elif isinstance(attr, staticmethod):
            members.append(f"    {attr_name}{_signature(attr.__func__)} [staticmethod]")
        elif isinstance(attr, classmethod):
            members.append(f"    {attr_name}{_signature(attr.__func__)} [classmethod]")
        elif inspect.isfunction(attr):
            members.append(f"    {attr_name}{_signature(attr)}")
        # Plain class attributes (constants, dataclass fields) are covered
        # by the class signature / docs; listing values would churn.
    lines.extend(sorted(members))
    return lines


def render_surface() -> str:
    """The current public surface of ``repro``, rendered deterministically."""
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    with warnings.catch_warnings():
        # Deprecated aliases warn on access by design; the snapshot still
        # records them (removing one is surface drift too).
        warnings.simplefilter("ignore", DeprecationWarning)
        import repro

        lines = [HEADER]
        for name in sorted(repro.__all__):
            if name == "__version__":
                continue  # the one value expected to change every release
            obj = getattr(repro, name)
            deprecated = " [deprecated]" if name in repro._DEPRECATED_ALIASES else ""
            if inspect.isclass(obj):
                described = _describe_class(name, obj)
                described[0] += deprecated
                lines.extend(described)
            elif callable(obj):
                lines.append(f"def {name}{_signature(obj)}{deprecated}")
            else:
                lines.append(f"data {name}: {type(obj).__name__}{deprecated}")
    return "\n".join(lines) + "\n"


def main() -> int:
    update = "--update" in sys.argv[1:]
    current = render_surface()
    if update:
        os.makedirs(os.path.dirname(SNAPSHOT_PATH), exist_ok=True)
        with open(SNAPSHOT_PATH, "w", encoding="utf-8") as handle:
            handle.write(current)
        print(f"api surface snapshot written: {os.path.relpath(SNAPSHOT_PATH, REPO_ROOT)}")
        return 0
    if not os.path.exists(SNAPSHOT_PATH):
        print("api surface check FAILED: docs/api_surface.txt is missing; "
              "run: python scripts/check_api.py --update")
        return 1
    with open(SNAPSHOT_PATH, encoding="utf-8") as handle:
        snapshot = handle.read()
    if snapshot == current:
        print("api surface check passed: repro.__all__ and signatures match "
              "docs/api_surface.txt")
        return 0
    print("api surface check FAILED: the public surface drifted from "
          "docs/api_surface.txt.")
    print("If the change is intentional, regenerate the snapshot and update "
          "docs/API.md in the same commit:")
    print("    python scripts/check_api.py --update\n")
    diff = difflib.unified_diff(
        snapshot.splitlines(), current.splitlines(),
        fromfile="docs/api_surface.txt (snapshot)",
        tofile="live surface", lineterm="")
    for line in diff:
        print(line)
    return 1


if __name__ == "__main__":
    sys.exit(main())
