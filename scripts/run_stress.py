#!/usr/bin/env python
"""Replay the concurrency stress tests until an interleaving bug bites.

Thread-interleaving bugs are schedule-dependent: one green run proves
very little.  This runner executes the concurrency test files repeatedly
(default 10 consecutive runs, the CI gate) with ``PYTHONHASHSEED=0`` so
everything deterministic stays deterministic and only genuine scheduling
races vary between runs.  It fails fast on the first red run and reports
which repetition broke, so the failure seed of information — "this is
flaky, not broken" vs "this is broken" — is preserved.

Usage::

    python scripts/run_stress.py                  # 10 runs of the default files
    python scripts/run_stress.py --repeats 50     # a deeper local hunt
    python scripts/run_stress.py tests/service/test_executor.py --repeats 3
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import time

#: Test files exercising schedule-sensitive concurrency paths, plus the
#: storage-engine crash-recovery kill-points (file-system timing varies
#: between runs, so repeated replays also harden the recovery protocol).
#: The server suites ride along because socket delivery, asyncio worker
#: scheduling and queue admission timing all vary run to run.
DEFAULT_TESTS = [
    "tests/service/test_executor.py",
    "tests/indexes/test_differential.py",
    "tests/storage/test_segment.py",
    "tests/service/test_durability.py",
    "tests/service/test_backend_equivalence.py",
    "tests/service/test_process_faults.py",
    "tests/server/test_faults.py",
    "tests/server/test_backpressure.py",
    "tests/sync/test_convergence.py",
    "tests/sync/test_sync_faults.py",
    "tests/query/test_query_differential.py",
    "tests/query/test_feed.py",
]
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def main(argv: list = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("tests", nargs="*", default=DEFAULT_TESTS,
                        help="test files/node ids to replay (default: the "
                             "concurrency stress suites)")
    parser.add_argument("--repeats", type=int, default=10,
                        help="consecutive green runs required (default: 10)")
    args = parser.parse_args(argv)
    if args.repeats <= 0:
        parser.error("--repeats must be positive")

    env = dict(os.environ)
    env["PYTHONHASHSEED"] = "0"
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )

    command = [sys.executable, "-m", "pytest", "-q", *args.tests]
    started = time.perf_counter()
    for run in range(1, args.repeats + 1):
        print(f"[stress] run {run}/{args.repeats}: {' '.join(args.tests)}",
              flush=True)
        result = subprocess.run(command, cwd=REPO_ROOT, env=env)
        if result.returncode != 0:
            print(f"[stress] FAILED on run {run}/{args.repeats} "
                  f"(exit {result.returncode}) — interleaving bug or real "
                  f"regression; rerun this script locally to reproduce.",
                  flush=True)
            return result.returncode
    elapsed = time.perf_counter() - started
    print(f"[stress] OK: {args.repeats} consecutive green runs "
          f"in {elapsed:.1f}s", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
