"""Repository tooling: CI gate scripts and the repro-lint framework.

Making ``scripts/`` a package lets the lint framework run as
``python -m scripts.lint`` from the repository root while the individual
gate scripts (``check_docs.py``, ``check_api.py``, ``check_lint.py``,
``run_stress.py``) stay directly executable.
"""
