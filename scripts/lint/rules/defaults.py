"""L7: no mutable default arguments anywhere in ``src/``.

A ``def f(x=[])`` default is evaluated once and shared by every call — a
classic source of cross-request state leaking between service calls.
"""

from __future__ import annotations

import ast
from typing import Iterator

from scripts.lint.astutil import FUNCTION_NODES, call_name
from scripts.lint.framework import Finding, Project, Rule, register

MUTABLE_CONSTRUCTORS = {"list", "dict", "set", "bytearray", "defaultdict",
                        "collections.defaultdict", "Counter",
                        "collections.Counter", "deque", "collections.deque"}


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and call_name(node) in MUTABLE_CONSTRUCTORS:
        return True
    return False


@register
class MutableDefaultRule(Rule):
    """Mutable default arguments are banned in library code."""

    rule_id = "L7-mutable-default"
    title = "no mutable default arguments in src/"
    rationale = """
    A mutable default (`def f(x=[])`, `def f(x={})`, `def f(x=set())`) is
    created once at definition time and shared across calls; in a
    long-lived sharded service that is cross-request — and potentially
    cross-shard — state leakage.  Use `None` and materialize inside the
    function.  Immutable defaults (tuples, frozensets, numbers, strings)
    are fine and are the codebase convention (`removes: Iterable = ()`).
    """

    def check(self, project: Project) -> Iterator[Finding]:
        for source in project.iter_files("src/"):
            if source.tree is None:
                continue
            for node in ast.walk(source.tree):
                if not isinstance(node, FUNCTION_NODES):
                    continue
                defaults = list(node.args.defaults) + [
                    d for d in node.args.kw_defaults if d is not None]
                for default in defaults:
                    if _is_mutable_default(default):
                        yield self.finding(
                            source.path, default.lineno,
                            f"mutable default argument in {node.name}(); "
                            "use None and materialize inside the function")
