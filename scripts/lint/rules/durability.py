"""L6: flush + fsync before anything becomes visible or renamed.

The storage engine's crash contract (docs/STORAGE.md, ARCHITECTURE.md §4)
is fsync-before-visibility: bytes are durable *before* the rename/journal
line that makes them reachable.  Statically: in the durability-critical
files, an ``os.rename``/``os.replace`` must be preceded in the same
function by an fsync-family call, and a journal append (a ``.write`` on a
handle opened in append mode) must be followed by ``flush`` and an
fsync-family call before the function returns.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from scripts.lint.astutil import FUNCTION_NODES, call_name, walk_without_nested_functions
from scripts.lint.framework import Finding, Project, Rule, register

#: Where the rule applies: the storage engine plus the service module that
#: owns the MANIFEST commit journal.
DURABILITY_PATHS = ("src/repro/storage/", "src/repro/service/service.py")

#: Calls that make bytes durable.  Methods with "fsync" in the name cover
#: the engine's helpers (_fsync_file, _fsync_directory, fsync_directory).
def _is_fsync_call(node: ast.Call) -> bool:
    name = call_name(node)
    if name in ("os.fsync", "fsync_directory"):
        return True
    if isinstance(node.func, ast.Attribute) and "fsync" in node.func.attr.lower():
        return True
    return False


def _is_flush_call(node: ast.Call) -> bool:
    if isinstance(node.func, ast.Attribute) and node.func.attr == "flush":
        return True
    # The engine's _fsync_file() helpers flush before syncing.
    return _is_fsync_call(node)


def _append_mode_handles(func: ast.AST) -> List[ast.withitem]:
    """with-items that open a file in append mode inside ``func``."""
    items = []
    for node in walk_without_nested_functions(func):
        if not isinstance(node, ast.With):
            continue
        for item in node.items:
            call = item.context_expr
            if not isinstance(call, ast.Call) or call_name(call) != "open":
                continue
            mode: Optional[ast.AST] = None
            if len(call.args) >= 2:
                mode = call.args[1]
            for kw in call.keywords:
                if kw.arg == "mode":
                    mode = kw.value
            if (isinstance(mode, ast.Constant) and isinstance(mode.value, str)
                    and "a" in mode.value):
                items.append(item)
    return items


@register
class DurabilityOrderRule(Rule):
    """Rename-into-place and journal appends must flush+fsync correctly."""

    rule_id = "L6-durability-order"
    title = "fsync before rename; flush+fsync after journal appends"
    rationale = """
    Encodes the fsync-before-visibility ordering of docs/STORAGE.md and
    ARCHITECTURE.md §4/§8: a commit is the single journal append, and
    nothing referenced by a journal line (or exposed by renaming a file
    into place) may still be sitting in a volatile page cache.  Breaking
    the order does not fail any test on a healthy machine — it only loses
    data on power failure, which is why it must be caught statically.
    Two checks inside storage/ and service/service.py: (a) a call to
    os.rename/os.replace must have an fsync-family call earlier in the
    same function (the renamed content was made durable first); (b) a
    .write() on a handle opened with mode "a..." (journal append) must be
    followed, later in the same function, by .flush() and an fsync-family
    call (os.fsync, fsync_directory, *_fsync_* helpers).
    """

    def check(self, project: Project) -> Iterator[Finding]:
        for source in project.iter_files():
            if source.tree is None:
                continue
            if not any(source.path.startswith(p) or source.path == p
                       for p in DURABILITY_PATHS):
                continue
            for func in ast.walk(source.tree):
                if not isinstance(func, FUNCTION_NODES):
                    continue
                yield from self._check_function(source.path, func)

    def _check_function(self, path: str, func: ast.AST) -> Iterator[Finding]:
        calls = [node for node in walk_without_nested_functions(func)
                 if isinstance(node, ast.Call)]
        fsync_lines = [c.lineno for c in calls if _is_fsync_call(c)]
        flush_lines = [c.lineno for c in calls if _is_flush_call(c)]

        for call in calls:
            if call_name(call) in ("os.rename", "os.replace"):
                if not any(line < call.lineno for line in fsync_lines):
                    yield self.finding(
                        path, call.lineno,
                        f"{call_name(call)}() without a preceding fsync in "
                        "the same function: the renamed bytes may not be "
                        "durable when they become visible")

        if _append_mode_handles(func):
            writes = [c for c in calls
                      if isinstance(c.func, ast.Attribute)
                      and c.func.attr == "write"]
            for write in writes:
                flushed = any(line >= write.lineno for line in flush_lines)
                synced = any(line >= write.lineno for line in fsync_lines)
                if not (flushed and synced):
                    missing = "flush+fsync" if not flushed else "fsync"
                    yield self.finding(
                        path, write.lineno,
                        f"append-mode journal write without {missing} later "
                        "in the same function: a crash can lose the "
                        "journal line after callers saw it succeed")
