"""N1/N2: unique test basenames and ``__all__`` consistency.

Two conventions that previously had to be retrofitted by hand: pytest
imports test modules by basename, so two ``test_differential.py`` files
in different directories shadow each other (PR 9 had to rename one); and
a stale ``__all__`` silently breaks ``from repro import *`` and the API
surface snapshot.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterator, List, Set

from scripts.lint.framework import Finding, Project, Rule, register


@register
class UniqueTestBasenameRule(Rule):
    """Every ``test_*.py`` under tests/ has a repository-unique basename."""

    rule_id = "N1-test-basename"
    title = "test module basenames are unique across tests/"
    rationale = """
    pytest (in rootdir import mode without per-directory __init__.py
    packages) imports test modules under their basename: two files named
    test_differential.py in different directories collide in sys.modules
    and one silently shadows the other — tests stop running without
    failing.  PR 9 hit exactly this and renamed tests/query's module by
    hand; this rule makes the convention mechanical.  Prefix the module
    with its subsystem (test_query_differential.py) to fix a collision.
    """

    def check(self, project: Project) -> Iterator[Finding]:
        by_basename: Dict[str, List[str]] = {}
        for source in project.iter_files("tests/"):
            basename = os.path.basename(source.path)
            if basename.startswith("test_") and basename.endswith(".py"):
                by_basename.setdefault(basename, []).append(source.path)
        for basename, paths in sorted(by_basename.items()):
            if len(paths) < 2:
                continue
            for path in paths:
                others = ", ".join(p for p in paths if p != path)
                yield self.finding(
                    path, 1,
                    f"test basename {basename} collides with {others}; "
                    "pytest imports by basename — rename with a subsystem "
                    "prefix")


def _module_level_bindings(tree: ast.Module) -> Set[str]:
    """Names bound at module scope (walking into if/try blocks)."""
    names: Set[str] = set()

    def bind_target(target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                bind_target(elt)
        elif isinstance(target, ast.Starred):
            bind_target(target.value)

    def walk(stmts) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                names.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    bind_target(target)
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                bind_target(stmt.target)
            elif isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    names.add((alias.asname or alias.name).split(".")[0])
            elif isinstance(stmt, ast.ImportFrom):
                for alias in stmt.names:
                    if alias.name == "*":
                        names.add("*")
                    else:
                        names.add(alias.asname or alias.name)
            elif isinstance(stmt, ast.If):
                walk(stmt.body)
                walk(stmt.orelse)
            elif isinstance(stmt, ast.Try):
                walk(stmt.body)
                for handler in stmt.handlers:
                    walk(handler.body)
                walk(stmt.orelse)
                walk(stmt.finalbody)
            elif isinstance(stmt, (ast.With, ast.For, ast.While)):
                if isinstance(stmt, ast.For):
                    bind_target(stmt.target)
                walk(stmt.body)

    walk(tree.body)
    return names


def _all_assignment(tree: ast.Module):
    """The module's ``__all__`` assignment node, if any."""
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    return stmt
        elif (isinstance(stmt, ast.AugAssign)
              and isinstance(stmt.target, ast.Name)
              and stmt.target.id == "__all__"):
            return stmt
    return None


@register
class AllConsistencyRule(Rule):
    """``__all__`` entries resolve; public packages declare ``__all__``."""

    rule_id = "N2-all-exports"
    title = "__all__ names resolve and public packages define __all__"
    rationale = """
    `__all__` is the export contract: scripts/check_api.py snapshots it
    into docs/api_surface.txt, and `from repro import *` follows it at
    runtime.  A name listed in __all__ but never bound in the module
    raises AttributeError only when a consumer finally touches it; a
    public package without __all__ makes the API surface implicit.  Two
    checks over src/: every string in a literal __all__ must be bound at
    module scope (dynamic __all__ built by concatenation is skipped —
    it cannot be resolved statically), and every package __init__.py
    under src/repro must assign __all__.  Names provided dynamically
    (e.g. via PEP 562 module __getattr__) count as bound when the module
    defines __getattr__.
    """

    def check(self, project: Project) -> Iterator[Finding]:
        for source in project.iter_files("src/"):
            if source.tree is None:
                continue
            assignment = _all_assignment(source.tree)
            is_package = source.path.endswith("__init__.py")
            if assignment is None:
                if is_package and source.path.startswith("src/repro/"):
                    yield self.finding(
                        source.path, 1,
                        "public package defines no __all__; declare the "
                        "export list explicitly")
                continue
            value = getattr(assignment, "value", None)
            if not isinstance(value, (ast.List, ast.Tuple)):
                continue  # dynamic __all__: not statically resolvable
            exported = [elt for elt in value.elts
                        if isinstance(elt, ast.Constant)
                        and isinstance(elt.value, str)]
            bound = _module_level_bindings(source.tree)
            if "*" in bound or "__getattr__" in bound:
                continue  # star-import or PEP 562: names bound dynamically
            for elt in exported:
                if elt.value not in bound:
                    yield self.finding(
                        source.path, elt.lineno,
                        f"__all__ lists {elt.value!r} but the module never "
                        "binds it")
