"""L5: no bare excepts; broad handlers must re-raise or be justified.

A silently-swallowed ``Exception`` turns an invariant violation into a
wrong answer three layers later.  The repository policy: handlers catch
the narrowest type that models the failure (usually one of the
``repro.core.errors`` types); a handler broad enough to catch
``Exception``/``BaseException`` must visibly re-raise (possibly after
converting to a library error type), or carry a suppression comment
stating why swallowing is correct at that site.
"""

from __future__ import annotations

import ast
from typing import Iterator

from scripts.lint.astutil import dotted_name, walk_without_nested_functions
from scripts.lint.framework import Finding, Project, Rule, register

BROAD_NAMES = {"Exception", "BaseException"}


def _handler_types(handler: ast.ExceptHandler):
    if handler.type is None:
        return None
    if isinstance(handler.type, ast.Tuple):
        return [dotted_name(elt) for elt in handler.type.elts]
    return [dotted_name(handler.type)]


def _contains_raise(handler: ast.ExceptHandler) -> bool:
    for node in handler.body:
        for child in [node, *walk_without_nested_functions(node)]:
            if isinstance(child, ast.Raise):
                return True
    return False


@register
class ExceptionPolicyRule(Rule):
    """Bare excepts are banned; broad handlers must re-raise or justify."""

    rule_id = "L5-exception-policy"
    title = "no bare except; except Exception must re-raise or justify"
    rationale = """
    Encodes the error-surface discipline of the library: failures travel
    as typed repro.core.errors exceptions so every layer can react to
    exactly the failure modes it understands (ShardExecutionError never
    yields partial results, ProtocolError answers-then-closes, ...).
    A bare `except:` additionally swallows KeyboardInterrupt/SystemExit
    and is always wrong — catch BaseException explicitly if that is
    really meant.  An `except Exception`/`except BaseException` handler
    is accepted when its body contains a `raise` (re-raise or conversion
    to a library type); deliberate swallow-sites — worker loops that
    convert errors to frames, threads that park the exception for the
    caller — carry a suppression with the justification, which doubles
    as documentation.
    """

    def check(self, project: Project) -> Iterator[Finding]:
        for source in project.iter_files("src/"):
            if source.tree is None:
                continue
            for node in ast.walk(source.tree):
                if not isinstance(node, ast.ExceptHandler):
                    continue
                types = _handler_types(node)
                if types is None:
                    yield self.finding(
                        source.path, node.lineno,
                        "bare `except:`; catch a specific type (or "
                        "BaseException explicitly, re-raising)")
                    continue
                broad = [t for t in types if t in BROAD_NAMES]
                if broad and not _contains_raise(node):
                    yield self.finding(
                        source.path, node.lineno,
                        f"`except {broad[0]}` swallows the error: narrow it "
                        "to a repro.core.errors type, re-raise, or add a "
                        "justified suppression")
