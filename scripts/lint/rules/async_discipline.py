"""L3: no blocking calls inside ``async def`` bodies.

The wire server runs one asyncio event loop that must never block: every
blocking repository call is handed to a dispatch thread pool via
``run_in_executor``.  A synchronous sleep, socket, subprocess or queue
wait inside a coroutine stalls *every* connection at once — the class of
bug that turns one slow consumer into a dead server.
"""

from __future__ import annotations

import ast
from typing import Iterator

from scripts.lint.astutil import call_name, walk_without_nested_functions
from scripts.lint.framework import Finding, Project, Rule, register

#: Calls that block the calling thread and therefore the event loop.
BLOCKING_CALLS = {
    "time.sleep": "use `await asyncio.sleep(...)`",
    "os.system": "run it in the dispatch pool via run_in_executor",
    "subprocess.run": "run it in the dispatch pool via run_in_executor",
    "subprocess.call": "run it in the dispatch pool via run_in_executor",
    "subprocess.check_call": "run it in the dispatch pool via run_in_executor",
    "subprocess.check_output": "run it in the dispatch pool via run_in_executor",
    "subprocess.Popen": "run it in the dispatch pool via run_in_executor",
    "socket.create_connection": "use asyncio streams",
    "socket.socket": "use asyncio streams",
    "open": "do file I/O in the dispatch pool via run_in_executor",
}

#: Attribute calls that block: `<future>.result()`, `<queue>.get()` with
#: no event-loop integration.  Matched by attribute name on any receiver,
#: so keep this list to names that have no non-blocking homonym in the
#: server code.
BLOCKING_ATTR_CALLS = {
    "result": "await the future instead of .result()",
}


@register
class AsyncBlockingRule(Rule):
    """Blocking calls are banned inside coroutine bodies in server code."""

    rule_id = "L3-async-blocking"
    title = "no blocking calls inside async def (server event loop)"
    rationale = """
    Encodes the threading model of docs/ARCHITECTURE.md §7: the asyncio
    event loop "does nothing blocking" — it reads chunks, splits frames
    and routes requests onto bounded queues, while every blocking
    repository call runs on the dispatch thread pool.  A time.sleep, a
    sync socket, a subprocess wait or a Future.result() inside an
    `async def` freezes all connections served by the loop and is exactly
    the failure mode the backpressure suite guards against dynamically;
    this rule catches it statically.  Nested synchronous `def`s inside a
    coroutine are exempt (they run on the pool, not the loop).
    """

    def check(self, project: Project) -> Iterator[Finding]:
        for source in project.iter_files("src/"):
            if source.tree is None:
                continue
            for node in ast.walk(source.tree):
                if not isinstance(node, ast.AsyncFunctionDef):
                    continue
                for child in walk_without_nested_functions(node):
                    if not isinstance(child, ast.Call):
                        continue
                    name = call_name(child)
                    if name in BLOCKING_CALLS:
                        yield self.finding(
                            source.path, child.lineno,
                            f"blocking call {name}() inside async def "
                            f"{node.name}; {BLOCKING_CALLS[name]}")
                        continue
                    if isinstance(child.func, ast.Attribute):
                        attr = child.func.attr
                        if attr in BLOCKING_ATTR_CALLS:
                            yield self.finding(
                                source.path, child.lineno,
                                f"blocking call .{attr}() inside async def "
                                f"{node.name}; {BLOCKING_ATTR_CALLS[attr]}")
