"""L1: the import layer order of ``docs/ARCHITECTURE.md`` is acyclic and downward.

The architecture stacks the packages of ``src/repro`` in strict layers
(leaf utilities at the bottom, applications at the top).  A module may
import (eagerly, at module scope) only from its own layer or layers
below; the module-level eager-import graph must additionally be free of
cycles.  Function-scope imports are deliberate lazy edges (they cannot
deadlock the import system) and ``if TYPE_CHECKING:`` imports never
execute, so both are exempt.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Tuple

from scripts.lint.astutil import iter_eager_imports, module_name_for, top_package
from scripts.lint.framework import Finding, Project, Rule, register

#: The layer rank of every package under ``repro``: an eager import from a
#: package of rank r may only target packages of rank <= r.  Mirrors the
#: diagram in docs/ARCHITECTURE.md (leaves at 0, applications on top) —
#: update both together.
LAYER_RANKS: Dict[str, int] = {
    "repro.hashing": 0,
    "repro.encoding": 0,
    "repro.core": 1,
    "repro.analysis": 1,
    "repro.storage": 2,
    "repro.query": 2,
    "repro.indexes": 3,
    "repro.service": 4,
    "repro.api": 5,
    "repro.server": 6,
    "repro.sync": 6,
    "repro.forkbase": 6,
    "repro.blockchain": 6,
    "repro.workloads": 6,
    # The root package is the facade re-exporting the public surface; it
    # sits above everything.
    "repro": 7,
}


def _edges_for(project: Project):
    """(src_module, dst_module, path, line) eager edges inside repro."""
    modules = {}
    for source in project.iter_files("src/repro"):
        module = module_name_for(source.path)
        if module is None or source.tree is None:
            continue
        modules[module] = source
    for module, source in sorted(modules.items()):
        is_package = source.path.endswith("__init__.py")
        for target, line, aliases in iter_eager_imports(source.tree, module,
                                                        is_package=is_package):
            if not target.startswith("repro"):
                continue
            # `from repro.server import protocol` binds the *submodule*
            # repro.server.protocol — edge to the submodule, not the
            # package (parent __init__ execution is an artifact of any
            # dotted import and would make every package cyclic).
            targets = []
            submodule_aliases = [a for a in aliases
                                 if f"{target}.{a}" in modules]
            if aliases and submodule_aliases and target in modules:
                targets.extend(f"{target}.{a}" for a in submodule_aliases)
                if len(submodule_aliases) < len(aliases):
                    targets.append(target)
            else:
                targets.append(target)
            for resolved in targets:
                # `from repro.storage.store import NodeStore` names the
                # module repro.storage.store; resolve unknown paths up to
                # the deepest known module.
                while resolved not in modules and "." in resolved:
                    resolved = resolved.rsplit(".", 1)[0]
                if resolved not in modules:
                    continue
                yield module, resolved, source.path, line


@register
class ImportLayeringRule(Rule):
    """Upward eager imports between layered packages are violations."""

    rule_id = "L1-layering"
    title = "strict import layer order over src/repro (no upward imports)"
    rationale = """
    Encodes the layer diagram of docs/ARCHITECTURE.md: hashing/encoding at
    the bottom, then core/analysis, storage/query, indexes, service, api,
    and the application packages (server, sync, forkbase, blockchain,
    workloads) on top, with the root `repro` facade above everything.

    A lower layer eagerly importing a higher one couples the node-format
    and durability substrate to policy code, and is one import away from
    an import-time cycle (PR 8's api<->sync coupling is only safe because
    both sides defer their imports to call time).  The graph is derived
    from actual module-scope import statements; function-scope and
    TYPE_CHECKING imports are exempt because they cannot participate in
    import-time initialization.
    """

    def check(self, project: Project) -> Iterator[Finding]:
        for src, dst, path, line in _edges_for(project):
            src_pkg, dst_pkg = top_package(src), top_package(dst)
            if src_pkg is None or dst_pkg is None or src_pkg == dst_pkg:
                continue
            src_rank = LAYER_RANKS.get(src_pkg)
            dst_rank = LAYER_RANKS.get(dst_pkg)
            if src_rank is None:
                yield self.finding(path, line,
                                   f"package {src_pkg} has no layer rank; "
                                   "add it to LAYER_RANKS in layering.py")
                continue
            if dst_rank is None:
                yield self.finding(path, line,
                                   f"package {dst_pkg} has no layer rank; "
                                   "add it to LAYER_RANKS in layering.py")
                continue
            if dst_rank > src_rank:
                yield self.finding(
                    path, line,
                    f"upward import: {src} (layer {src_rank}, {src_pkg}) "
                    f"eagerly imports {dst} (layer {dst_rank}, {dst_pkg}); "
                    "defer it to call time or move the shared code down")


@register
class ImportCycleRule(Rule):
    """The module-level eager-import graph must be acyclic."""

    rule_id = "L1-cycles"
    title = "no eager import cycles between repro modules"
    rationale = """
    A cycle in the module-scope import graph makes initialization order
    depend on which module happens to be imported first — the classic
    partially-initialized-module trap.  The repository convention is that
    any back-edge (e.g. repro.api.repository -> repro.sync.session for
    Repository.sync) is deferred to function scope; this rule keeps the
    eager graph a DAG so that convention cannot erode.
    """

    def check(self, project: Project) -> Iterator[Finding]:
        graph: Dict[str, List[Tuple[str, str, int]]] = {}
        for src, dst, path, line in _edges_for(project):
            graph.setdefault(src, []).append((dst, path, line))
            graph.setdefault(dst, [])

        # Iterative Tarjan SCC.
        index: Dict[str, int] = {}
        lowlink: Dict[str, int] = {}
        on_stack: Dict[str, bool] = {}
        stack: List[str] = []
        counter = [0]
        sccs: List[List[str]] = []

        def strongconnect(root: str) -> None:
            work = [(root, iter(graph[root]))]
            index[root] = lowlink[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack[root] = True
            while work:
                node, edges = work[-1]
                advanced = False
                for dst, _path, _line in edges:
                    if dst not in index:
                        index[dst] = lowlink[dst] = counter[0]
                        counter[0] += 1
                        stack.append(dst)
                        on_stack[dst] = True
                        work.append((dst, iter(graph[dst])))
                        advanced = True
                        break
                    if on_stack.get(dst):
                        lowlink[node] = min(lowlink[node], index[dst])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack[member] = False
                        component.append(member)
                        if member == node:
                            break
                    sccs.append(component)

        for node in sorted(graph):
            if node not in index:
                strongconnect(node)

        for component in sccs:
            members = sorted(component)
            is_cycle = len(members) > 1 or any(
                dst == members[0] for dst, _p, _l in graph[members[0]])
            if not is_cycle:
                continue
            member_set = set(members)
            for src in members:
                for dst, path, line in graph[src]:
                    if dst in member_set:
                        yield self.finding(
                            path, line,
                            f"eager import cycle: {' <-> '.join(members)} "
                            f"(edge {src} -> {dst}); defer one edge to "
                            "function scope")
