"""Rule plugins for repro-lint.

Every module in this package defines one or more :class:`scripts.lint.Rule`
subclasses decorated with :func:`scripts.lint.register`.  The framework's
:func:`scripts.lint.load_rules` imports all of them via ``pkgutil``, so
adding a rule is: drop a module here, decorate the class, document it in
``docs/LINT.md``.
"""
