"""L4: only picklable values may cross the process-backend pipe.

``ProcessShardBackend`` ships ``(method, args)`` command tuples to forked
shard workers over pickled duplex pipes.  Lambdas, closures (functions
defined inside another function), locks and open file objects either do
not pickle at all or pickle into something meaningless in the worker
process.  The engine boundary was designed so only plain values cross
(docs/ARCHITECTURE.md §8); this rule keeps it that way.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from scripts.lint.astutil import FUNCTION_NODES, call_name, walk_without_nested_functions
from scripts.lint.framework import Finding, Project, Rule, register

#: Files containing the pipe boundary, and the callee attribute names that
#: put a value on the wire there.
BOUNDARY_FILES: Tuple[str, ...] = ("src/repro/service/process.py",)
BOUNDARY_CALL_ATTRS: Set[str] = {"send", "_send", "call"}

#: Constructors whose instances cannot (meaningfully) cross a pickle pipe.
UNPICKLABLE_CONSTRUCTORS = {
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Semaphore", "threading.BoundedSemaphore", "threading.Event",
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore", "Event",
    "open",
}

#: The engine class whose handle-command methods define the boundary
#: contract: returns must be plain values too.
ENGINE_FILE = "src/repro/service/engine.py"
ENGINE_CLASS = "ShardEngine"


def _unpicklable_parts(node: ast.AST,
                       local_defs: Set[str]) -> Iterator[Tuple[int, str]]:
    """(line, description) for unpicklable sub-expressions of ``node``."""
    stack: List[ast.AST] = [node]
    while stack:
        expr = stack.pop()
        if isinstance(expr, ast.Lambda):
            yield expr.lineno, "a lambda (unpicklable)"
            continue
        if isinstance(expr, ast.Call):
            name = call_name(expr)
            if name in UNPICKLABLE_CONSTRUCTORS:
                kind = "an open file object" if name == "open" else "a lock/sync primitive"
                yield expr.lineno, f"{name}() — {kind} (unpicklable)"
            stack.extend(ast.iter_child_nodes(expr))
            continue
        if isinstance(expr, ast.Name) and expr.id in local_defs:
            yield expr.lineno, (f"nested function {expr.id!r} — a closure "
                                "(unpicklable)")
            continue
        stack.extend(ast.iter_child_nodes(expr))


@register
class PickleBoundaryRule(Rule):
    """Lambdas, locks, files and closures must not cross the worker pipe."""

    rule_id = "L4-pickle-boundary"
    title = "only plain picklable values cross the process-shard pipe"
    rationale = """
    Encodes the boundary contract of docs/ARCHITECTURE.md §8: ShardEngine
    is "no locks, no transport, only picklable values at the method
    boundary", and ProcessShardBackend ships (method, args) tuples over a
    pickled pipe.  A lambda or a function defined inside another function
    fails to pickle outright; a lock or file object pickles into a
    different (useless) object in the worker, turning a synchronization
    or durability assumption silently false.  The rule inspects every
    argument expression reaching the pipe-send callees (`.send`, `._send`,
    `.call` in service/process.py) plus return statements of ShardEngine
    methods, and flags lambdas, nested-function references, lock/event
    constructors and open() calls.
    """

    def check(self, project: Project) -> Iterator[Finding]:
        for source in project.iter_files():
            if source.tree is None:
                continue
            if source.path in BOUNDARY_FILES:
                yield from self._check_boundary_file(source)
            if source.path == ENGINE_FILE:
                yield from self._check_engine_returns(source)

    def _check_boundary_file(self, source) -> Iterator[Finding]:
        # Map each function to the names of functions nested inside it
        # (references to those are closures once they cross the pipe).
        for func in ast.walk(source.tree):
            if not isinstance(func, FUNCTION_NODES):
                continue
            local_defs = {child.name for child in ast.walk(func)
                          if isinstance(child, FUNCTION_NODES)
                          and child is not func}
            for child in walk_without_nested_functions(func):
                if not isinstance(child, ast.Call):
                    continue
                if not isinstance(child.func, ast.Attribute):
                    continue
                if child.func.attr not in BOUNDARY_CALL_ATTRS:
                    continue
                for arg in list(child.args) + [kw.value for kw in child.keywords]:
                    for line, description in _unpicklable_parts(arg, local_defs):
                        yield self.finding(
                            source.path, line,
                            f"{description} is passed into pipe boundary "
                            f".{child.func.attr}(); only plain values may "
                            "cross the process-shard pipe")

    def _check_engine_returns(self, source) -> Iterator[Finding]:
        engine = next((node for node in ast.walk(source.tree)
                       if isinstance(node, ast.ClassDef)
                       and node.name == ENGINE_CLASS), None)
        if engine is None:
            return
        for method in engine.body:
            if not isinstance(method, FUNCTION_NODES):
                continue
            if method.name.startswith("_"):
                continue
            for default in list(method.args.defaults) + [
                    d for d in method.args.kw_defaults if d is not None]:
                for line, description in _unpicklable_parts(default, set()):
                    yield self.finding(
                        source.path, line,
                        f"{description} as a default of ShardEngine."
                        f"{method.name}(); handle-command arguments must "
                        "be plain picklable values")
            for child in walk_without_nested_functions(method):
                if isinstance(child, ast.Return) and child.value is not None:
                    for line, description in _unpicklable_parts(
                            child.value, set()):
                        yield self.finding(
                            source.path, line,
                            f"{description} returned from ShardEngine."
                            f"{method.name}(); handle-command returns must "
                            "be plain picklable values")
