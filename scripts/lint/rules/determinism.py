"""L2: code that feeds node bytes must be deterministic.

The history-independence property of the paper (same record set => same
root digest, regardless of insertion order or the process that computed
it) rests on every byte that reaches a hash function being a pure
function of logical content.  Iterating a ``set`` of strings or bytes is
hash-randomized *across processes*; wall-clock time, ``os.urandom``,
unseeded ``random`` and CPython object ids differ between runs by
construction.  None of them may appear in the serialization-reachable
modules.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from scripts.lint.astutil import call_name, walk_without_nested_functions
from scripts.lint.framework import Finding, Project, Rule, register

#: The modules whose code is reachable from node serialization: the hash
#: and encoding leaves, every index structure (node formats + traversal),
#: proof assembly, and the posting-key codec of the query layer.  This is
#: the static approximation of "any function reachable from node
#: serialization" — extend it when new code starts emitting node bytes.
DETERMINISTIC_PATHS: Tuple[str, ...] = (
    "src/repro/hashing/",
    "src/repro/encoding/",
    "src/repro/indexes/",
    "src/repro/core/proof.py",
    "src/repro/query/definition.py",
)

#: Calls that are nondeterministic across runs or processes.
FORBIDDEN_CALLS = {
    "time.time": "wall-clock time",
    "time.time_ns": "wall-clock time",
    "time.monotonic": "process-relative time",
    "time.perf_counter": "process-relative time",
    "datetime.now": "wall-clock time",
    "datetime.utcnow": "wall-clock time",
    "datetime.datetime.now": "wall-clock time",
    "datetime.datetime.utcnow": "wall-clock time",
    "os.urandom": "OS entropy",
    "uuid.uuid1": "host/time-derived UUID",
    "uuid.uuid4": "random UUID",
    "random.random": "unseeded global RNG",
    "random.randint": "unseeded global RNG",
    "random.randrange": "unseeded global RNG",
    "random.choice": "unseeded global RNG",
    "random.shuffle": "unseeded global RNG",
    "random.sample": "unseeded global RNG",
    "random.getrandbits": "unseeded global RNG",
    "id": "CPython object identity",
    "hash": "process-randomized str/bytes hashing",
}

#: Callees for which a set argument is order-insensitive, hence fine.
ORDER_INSENSITIVE_CALLEES = {
    "sorted", "len", "min", "max", "sum", "any", "all", "bool",
    "set", "frozenset",
}


def _is_set_expression(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        # An argument-less set() is empty: it has no iteration order.
        return (call_name(node) in ("set", "frozenset")
                and bool(node.args))
    return False


@register
class DeterminismRule(Rule):
    """No nondeterministic inputs in serialization-reachable modules."""

    rule_id = "L2-determinism"
    title = "serialization-reachable code must be deterministic"
    rationale = """
    Encodes the byte-identical-roots invariant of docs/ARCHITECTURE.md §1
    (structural invariance / history independence): equal logical content
    must serialize to equal bytes on every machine, every process, every
    run.  PR 2's differential harness caught an MBT history-independence
    bug at test time; this rule catches the *ingredients* of such bugs at
    lint time: set iteration feeding bytes (str/bytes hashing — hence set
    order — is randomized per process), wall-clock or monotonic time,
    OS entropy, unseeded global random, CPython `id()` and builtin
    `hash()`.  Scope: hashing/, encoding/, indexes/, core/proof.py and
    the posting-key codec (DETERMINISTIC_PATHS in determinism.py).
    Wrapping the set in `sorted(...)` restores determinism and is the
    standard fix.
    """

    def check(self, project: Project) -> Iterator[Finding]:
        for source in project.iter_files():
            if source.tree is None:
                continue
            if not any(source.path.startswith(p) or source.path == p
                       for p in DETERMINISTIC_PATHS):
                continue
            # `hash(...)` inside a __hash__ method feeds process-local
            # dict/set keying, never node bytes: exempt those calls.
            hash_dunder_calls = set()
            for node in ast.walk(source.tree):
                if (isinstance(node, ast.FunctionDef)
                        and node.name == "__hash__"):
                    for child in ast.walk(node):
                        if isinstance(child, ast.Call):
                            hash_dunder_calls.add(id(child))
            for node in ast.walk(source.tree):
                yield from self._check_node(source.path, node,
                                            hash_dunder_calls)

    def _check_node(self, path: str, node: ast.AST,
                    hash_dunder_calls) -> Iterator[Finding]:
        if isinstance(node, ast.Call):
            name = call_name(node)
            if name in FORBIDDEN_CALLS:
                if name == "hash" and id(node) in hash_dunder_calls:
                    return
                yield self.finding(
                    path, node.lineno,
                    f"call to {name}() ({FORBIDDEN_CALLS[name]}) in a "
                    "serialization-reachable module breaks byte-identical "
                    "roots")
            elif name not in ORDER_INSENSITIVE_CALLEES:
                for arg in node.args:
                    if _is_set_expression(arg):
                        yield self.finding(
                            path, arg.lineno,
                            "set expression passed to an order-sensitive "
                            f"callee {name or '<expr>'}(); set iteration "
                            "order is process-randomized — wrap it in "
                            "sorted(...)")
        elif isinstance(node, ast.For) and _is_set_expression(node.iter):
            yield self.finding(
                path, node.lineno,
                "iteration over a set expression; set order is "
                "process-randomized — iterate sorted(...) instead")
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                               ast.DictComp)):
            for gen in node.generators:
                if _is_set_expression(gen.iter):
                    yield self.finding(
                        path, gen.iter.lineno,
                        "comprehension over a set expression; set order is "
                        "process-randomized — iterate sorted(...) instead")
