"""repro-lint: an AST-based invariant checker for this repository.

The architecture documents (``docs/ARCHITECTURE.md`` §§3–10) promise a set
of invariants — deterministic byte-identical roots, a strict import layer
order, a picklable process-backend boundary, fsync-before-visibility
durability — that previously lived only in prose.  This package machine-
checks them: a plugin-based rule registry (:mod:`scripts.lint.rules`), a
small framework (:mod:`scripts.lint.framework`) handling suppressions and
the grandfathered-findings baseline, and a CLI (:mod:`scripts.lint.cli`)
that gates CI.  ``docs/LINT.md`` documents every rule.
"""

from scripts.lint.cli import main
from scripts.lint.framework import (
    Finding,
    LintResult,
    Project,
    Rule,
    RULES,
    all_rules,
    load_rules,
    register,
    run_rules,
)

__all__ = [
    "Finding",
    "LintResult",
    "Project",
    "Rule",
    "RULES",
    "all_rules",
    "load_rules",
    "main",
    "register",
    "run_rules",
]
