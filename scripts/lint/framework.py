"""Core machinery of repro-lint: findings, suppressions, baseline, runner.

The framework is deliberately small and dependency-free.  A lint run is:

1. Collect the python files of the repository (or an in-memory mapping of
   path -> source, which is how the fixture tests drive single rules).
2. Parse each file once into an :mod:`ast` tree and scan its comments for
   ``# repro-lint: disable=<rule-id> — <reason>`` suppressions.
3. Hand the whole :class:`Project` to every registered :class:`Rule`;
   rules yield :class:`Finding` objects anchored to a file and line.
4. Drop findings covered by a suppression on the same (or the preceding
   comment-only) line, then drop findings recorded in the checked-in
   baseline file.  Suppressions that covered nothing and baseline entries
   that matched nothing are themselves reported, so neither mechanism can
   silently rot.

Rules register themselves with :func:`register`; the plugin modules under
``scripts/lint/rules/`` are imported on demand by :func:`load_rules`.
"""

from __future__ import annotations

import ast
import dataclasses
import importlib
import io
import json
import os
import pkgutil
import re
import tokenize
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple, Type

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

#: Directories (relative to the repo root) linted by default.  Rules narrow
#: their own scope further — e.g. the layering rule only looks at
#: ``src/repro``, the test-naming rule only at ``tests``.
DEFAULT_ROOTS = ("src", "tests")

#: Default location of the grandfathered-findings baseline.
DEFAULT_BASELINE = os.path.join("scripts", "lint", "baseline.json")


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to a file and line."""

    path: str
    line: int
    rule: str
    message: str

    def key(self) -> Dict[str, object]:
        """The JSON-serializable identity used for baseline matching."""
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "message": self.message}

    def render(self) -> str:
        """Human-readable one-line form."""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_.,-]+)"
    r"(?:\s*(?:—|–|--|-)\s*(?P<reason>\S.*))?")


@dataclasses.dataclass
class Suppression:
    """A parsed ``# repro-lint: disable=...`` comment."""

    path: str
    line: int
    rules: Tuple[str, ...]
    reason: Optional[str]
    comment_only: bool
    used: bool = False

    def covers(self, finding: Finding) -> bool:
        """True when this suppression applies to ``finding``.

        A suppression on a code line covers findings on that line; a
        suppression on a comment-only line covers the next line.
        """
        if finding.rule not in self.rules and "all" not in self.rules:
            return False
        target = self.line + 1 if self.comment_only else self.line
        return finding.line == target


class SourceFile:
    """One parsed python source file plus its suppression comments."""

    def __init__(self, path: str, text: str):
        self.path = path
        self.text = text
        self.lines = text.splitlines()
        self.syntax_error: Optional[SyntaxError] = None
        try:
            self.tree: Optional[ast.Module] = ast.parse(text, filename=path)
        except SyntaxError as exc:
            self.tree = None
            self.syntax_error = exc
        self.suppressions: List[Suppression] = []
        # Scan actual COMMENT tokens, not raw lines: suppression markers
        # quoted inside string literals (lint-fixture test sources) must
        # not register as live suppressions.
        for lineno, comment in self._comment_tokens(text):
            match = _SUPPRESS_RE.search(comment)
            if match is None:
                continue
            rules = tuple(part.strip() for part in match.group(1).split(",")
                          if part.strip())
            line = self.lines[lineno - 1] if lineno <= len(self.lines) else ""
            comment_only = line.strip().startswith("#")
            self.suppressions.append(Suppression(
                path=path, line=lineno, rules=rules,
                reason=match.group("reason"), comment_only=comment_only))

    @staticmethod
    def _comment_tokens(text: str) -> Iterator[Tuple[int, str]]:
        readline = io.StringIO(text).readline
        try:
            for tok in tokenize.generate_tokens(readline):
                if tok.type == tokenize.COMMENT:
                    yield tok.start[0], tok.string
        except (tokenize.TokenError, SyntaxError):
            # Untokenizable files already surface as E0-parse findings.
            return

    def suppression_for(self, finding: Finding) -> Optional[Suppression]:
        """The first suppression covering ``finding``, if any."""
        for suppression in self.suppressions:
            if suppression.covers(finding):
                return suppression
        return None


class Project:
    """The set of source files a lint run sees.

    ``files`` maps repo-relative posix paths (``src/repro/core/errors.py``)
    to :class:`SourceFile` objects.  Tests build projects from in-memory
    mappings; the CLI builds them by walking the repository.
    """

    def __init__(self, files: Mapping[str, SourceFile]):
        self.files: Dict[str, SourceFile] = dict(files)

    @classmethod
    def from_sources(cls, sources: Mapping[str, str]) -> "Project":
        """Build a project from ``{path: source_text}`` (fixture entry point)."""
        return cls({path: SourceFile(path, text)
                    for path, text in sources.items()})

    @classmethod
    def from_tree(cls, root: str,
                  roots: Sequence[str] = DEFAULT_ROOTS) -> "Project":
        """Build a project by walking ``root/<roots>`` for ``*.py`` files."""
        files: Dict[str, SourceFile] = {}
        for sub in roots:
            base = os.path.join(root, sub)
            if not os.path.isdir(base):
                continue
            for dirpath, dirnames, filenames in os.walk(base):
                dirnames[:] = [d for d in dirnames if d != "__pycache__"]
                for filename in sorted(filenames):
                    if not filename.endswith(".py"):
                        continue
                    full = os.path.join(dirpath, filename)
                    rel = os.path.relpath(full, root).replace(os.sep, "/")
                    with open(full, encoding="utf-8") as handle:
                        files[rel] = SourceFile(rel, handle.read())
        return cls(files)

    def iter_files(self, prefix: str = "") -> Iterator[SourceFile]:
        """All files whose path starts with ``prefix``, sorted by path."""
        for path in sorted(self.files):
            if path.startswith(prefix):
                yield self.files[path]


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes and implement :meth:`check`.

    Attributes
    ----------
    rule_id:
        Stable identifier used in output, suppressions and the baseline.
    title:
        One-line summary shown by ``--list-rules``.
    rationale:
        Multi-paragraph explanation shown by ``--explain <rule-id>``: the
        invariant, why it holds, and the doc section it encodes.
    """

    rule_id: str = ""
    title: str = ""
    rationale: str = ""

    def check(self, project: Project) -> Iterator[Finding]:
        """Yield findings for ``project``."""
        raise NotImplementedError

    def finding(self, path: str, line: int, message: str) -> Finding:
        """Convenience constructor stamping this rule's id."""
        return Finding(path=path, line=line, rule=self.rule_id, message=message)


#: The global rule registry: rule_id -> Rule subclass.
RULES: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the registry (plugin hook)."""
    if not cls.rule_id:
        raise ValueError(f"rule {cls.__name__} has no rule_id")
    if cls.rule_id in RULES and RULES[cls.rule_id] is not cls:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    RULES[cls.rule_id] = cls
    return cls


def load_rules() -> Dict[str, Type[Rule]]:
    """Import every module under ``scripts.lint.rules`` and return the registry."""
    from scripts.lint import rules as rules_pkg

    for info in pkgutil.iter_modules(rules_pkg.__path__):
        importlib.import_module(f"{rules_pkg.__name__}.{info.name}")
    return RULES


def all_rules() -> List[Rule]:
    """Instantiate every registered rule, sorted by id."""
    load_rules()
    return [RULES[rule_id]() for rule_id in sorted(RULES)]


# -- baseline --------------------------------------------------------------


def load_baseline(path: str) -> List[Dict[str, object]]:
    """Read the baseline file; a missing file is an empty baseline."""
    if not os.path.exists(path):
        return []
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, list):
        raise ValueError(f"baseline {path}: expected a JSON list")
    return data


def save_baseline(path: str, findings: Sequence[Finding]) -> None:
    """Write ``findings`` as the new grandfathered baseline."""
    entries = [finding.key() for finding in sorted(findings)]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(entries, handle, indent=2, sort_keys=True)
        handle.write("\n")


# -- runner ----------------------------------------------------------------


@dataclasses.dataclass
class LintResult:
    """Everything a lint run produced, pre-filtering included."""

    findings: List[Finding]
    suppressed: List[Finding]
    baselined: List[Finding]
    stale_baseline: List[Dict[str, object]]

    @property
    def ok(self) -> bool:
        """True when nothing fails the gate (stale baseline entries do)."""
        return not self.findings and not self.stale_baseline


def run_rules(project: Project, rules: Optional[Sequence[Rule]] = None,
              baseline: Sequence[Mapping[str, object]] = ()) -> LintResult:
    """Run ``rules`` over ``project`` and apply suppression + baseline filters."""
    if rules is None:
        rules = all_rules()
    raw: List[Finding] = []
    for source in project.iter_files():
        if source.syntax_error is not None:
            raw.append(Finding(
                path=source.path, line=source.syntax_error.lineno or 1,
                rule="E0-parse",
                message=f"file does not parse: {source.syntax_error.msg}"))
    for rule in rules:
        raw.extend(rule.check(project))

    findings: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in sorted(set(raw)):
        source = project.files.get(finding.path)
        suppression = source.suppression_for(finding) if source else None
        if suppression is not None:
            if suppression.reason:
                suppression.used = True
                suppressed.append(finding)
                continue
            findings.append(Finding(
                path=finding.path, line=suppression.line,
                rule="E1-suppression",
                message=(f"suppression of {finding.rule} carries no reason "
                         "(write `# repro-lint: disable=<rule> — <why>`)")))
            suppression.used = True
            continue
        findings.append(finding)

    # Unused suppressions are findings too: a suppression whose violation
    # has been fixed must be deleted, or it would silently mask the next
    # regression on that line.
    for source in project.iter_files():
        for suppression in source.suppressions:
            if not suppression.used:
                findings.append(Finding(
                    path=source.path, line=suppression.line,
                    rule="E1-suppression",
                    message=("suppression matches no finding "
                             f"(rules: {', '.join(suppression.rules)}); "
                             "delete it")))

    baselined: List[Finding] = []
    remaining: List[Finding] = []
    baseline_pool = [dict(entry) for entry in baseline]
    for finding in findings:
        key = finding.key()
        if key in baseline_pool:
            baseline_pool.remove(key)
            baselined.append(finding)
        else:
            remaining.append(finding)
    return LintResult(findings=sorted(remaining), suppressed=suppressed,
                      baselined=baselined, stale_baseline=baseline_pool)
