"""Shared AST helpers for repro-lint rules."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> Optional[str]:
    """Dotted name of a call's callee, if statically nameable."""
    return dotted_name(node.func)


def module_name_for(path: str) -> Optional[str]:
    """Importable module name for a ``src/...`` repo-relative path."""
    if not path.startswith("src/") or not path.endswith(".py"):
        return None
    parts = path[len("src/"):-len(".py")].split("/")
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def top_package(module: str, root: str = "repro") -> Optional[str]:
    """``repro.core`` for ``repro.core.errors``; ``repro`` for the root."""
    parts = module.split(".")
    if parts[0] != root:
        return None
    if len(parts) == 1:
        return root
    return ".".join(parts[:2])


def _is_type_checking_test(test: ast.AST) -> bool:
    name = dotted_name(test)
    return name in ("TYPE_CHECKING", "typing.TYPE_CHECKING")


def iter_eager_imports(
        tree: ast.Module, module: str,
        is_package: bool = False) -> Iterator[Tuple[str, int, Tuple[str, ...]]]:
    """(imported module, line, from-aliases) for module-scope imports.

    Imports inside function bodies are deliberate lazy edges (they cannot
    participate in an import-time cycle) and imports under
    ``if TYPE_CHECKING:`` never execute, so both are excluded.  Relative
    imports are resolved against ``module`` (``is_package`` is True when
    the file is an ``__init__.py``, which shifts the anchor by one level).
    The third element carries the names of a ``from X import a, b`` —
    callers use it to resolve ``from pkg import submodule`` to the
    submodule rather than the package.
    """

    def walk(stmts) -> Iterator[Tuple[str, int, Tuple[str, ...]]]:
        for stmt in stmts:
            if isinstance(stmt, FUNCTION_NODES):
                continue
            if isinstance(stmt, ast.ClassDef):
                yield from walk(stmt.body)
                continue
            if isinstance(stmt, ast.If):
                if not _is_type_checking_test(stmt.test):
                    yield from walk(stmt.body)
                yield from walk(stmt.orelse)
                continue
            if isinstance(stmt, ast.Try):
                yield from walk(stmt.body)
                for handler in stmt.handlers:
                    yield from walk(handler.body)
                yield from walk(stmt.orelse)
                yield from walk(stmt.finalbody)
                continue
            if isinstance(stmt, (ast.With, ast.For, ast.While)):
                yield from walk(stmt.body)
                if hasattr(stmt, "orelse"):
                    yield from walk(stmt.orelse)
                continue
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    yield alias.name, stmt.lineno, ()
            elif isinstance(stmt, ast.ImportFrom):
                if stmt.level:
                    parts = module.split(".")
                    # level 1 is the current package: drop the module's own
                    # basename unless the file *is* the package __init__.
                    drop = stmt.level if not is_package else stmt.level - 1
                    parts = parts[:len(parts) - drop] if drop else parts
                    prefix = ".".join(parts)
                    target = f"{prefix}.{stmt.module}" if stmt.module else prefix
                else:
                    target = stmt.module or ""
                if target:
                    yield (target, stmt.lineno,
                           tuple(alias.name for alias in stmt.names))

    yield from walk(tree.body)


def iter_functions(tree: ast.Module) -> Iterator[ast.AST]:
    """Every (sync and async) function definition in ``tree``."""
    for node in ast.walk(tree):
        if isinstance(node, FUNCTION_NODES):
            yield node


def walk_without_nested_functions(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` over a function body that stops at nested function defs."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if isinstance(child, FUNCTION_NODES + (ast.Lambda,)):
            continue
        stack.extend(ast.iter_child_nodes(child))
