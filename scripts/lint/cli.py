"""Command-line entry point for repro-lint.

Run from the repository root::

    python scripts/check_lint.py            # human output, gate exit code
    python -m scripts.lint --json           # machine-readable findings
    python -m scripts.lint --explain L2-determinism
    python -m scripts.lint --list-rules
    python -m scripts.lint --update-baseline   # grandfather current findings

Exit status is 0 when every finding is suppressed (with a reason) or
baselined, 1 otherwise.  Stale baseline entries — recorded findings that
no longer occur — also fail the gate so the baseline can only shrink.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import textwrap
from typing import List, Optional, Sequence

from scripts.lint.framework import (
    DEFAULT_BASELINE,
    DEFAULT_ROOTS,
    REPO_ROOT,
    Finding,
    Project,
    all_rules,
    load_baseline,
    run_rules,
    save_baseline,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based invariant checker for the repro codebase.")
    parser.add_argument("--root", default=REPO_ROOT,
                        help="repository root to lint (default: this repo)")
    parser.add_argument("--roots", nargs="*", default=list(DEFAULT_ROOTS),
                        help="top-level directories to scan (default: src tests)")
    parser.add_argument("--baseline", default=None,
                        help=f"baseline file (default: <root>/{DEFAULT_BASELINE})")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit findings as a JSON list")
    parser.add_argument("--explain", metavar="RULE",
                        help="print a rule's invariant and rationale, then exit")
    parser.add_argument("--list-rules", action="store_true",
                        help="list registered rules, then exit")
    parser.add_argument("--update-baseline", action="store_true",
                        help="write current findings to the baseline file")
    return parser


def _explain(rule_id: str) -> int:
    for rule in all_rules():
        if rule.rule_id == rule_id:
            print(f"{rule.rule_id}: {rule.title}\n")
            print(textwrap.dedent(rule.rationale).strip())
            print("\nSuppress a deliberate violation with\n"
                  f"    # repro-lint: disable={rule.rule_id} — <reason>\n"
                  "on the offending line (or the comment line above it).")
            return 0
    print(f"unknown rule {rule_id!r}; --list-rules shows the registry",
          file=sys.stderr)
    return 2


def _render_human(result) -> None:
    for finding in result.findings:
        print(finding.render())
    for entry in result.stale_baseline:
        print(f"{entry.get('path')}:{entry.get('line')}: [baseline] stale "
              f"entry for {entry.get('rule')} no longer occurs; remove it")
    counts = (f"{len(result.findings)} finding(s), "
              f"{len(result.suppressed)} suppressed, "
              f"{len(result.baselined)} baselined, "
              f"{len(result.stale_baseline)} stale baseline entr(ies)")
    if result.ok:
        print(f"repro-lint passed: {counts}")
    else:
        print(f"repro-lint FAILED: {counts}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the linter; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id:24s} {rule.title}")
        return 0
    if args.explain:
        return _explain(args.explain)

    baseline_path = args.baseline or os.path.join(args.root, DEFAULT_BASELINE)
    project = Project.from_tree(args.root, roots=args.roots)
    if args.update_baseline:
        result = run_rules(project, baseline=())
        save_baseline(baseline_path, result.findings)
        print(f"baseline updated: {len(result.findings)} finding(s) "
              f"written to {baseline_path}")
        return 0

    result = run_rules(project, baseline=load_baseline(baseline_path))
    if args.as_json:
        payload = {
            "findings": [finding.key() for finding in result.findings],
            "suppressed": [finding.key() for finding in result.suppressed],
            "baselined": [finding.key() for finding in result.baselined],
            "stale_baseline": list(result.stale_baseline),
            "ok": result.ok,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        _render_human(result)
    return 0 if result.ok else 1
