#!/usr/bin/env python3
"""CI gate wrapper for repro-lint (see ``docs/LINT.md``).

Run from anywhere::

    python scripts/check_lint.py [--json] [--explain RULE] ...

Equivalent to ``python -m scripts.lint`` from the repository root; exits
non-zero on any non-baselined, non-suppressed finding.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from scripts.lint import main  # noqa: E402  (path bootstrap must run first)

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
