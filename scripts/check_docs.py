#!/usr/bin/env python3
"""Documentation lint: relative links must resolve, public APIs must be documented.

Run from the repository root (CI runs it on every push):

    python scripts/check_docs.py

Checks performed:

1. Every relative link/image in the tracked markdown files points at a
   file or directory that exists (external http(s)/mailto links and
   in-page anchors are skipped).
2. Every module under ``src/repro`` has a module docstring.
3. Public classes/functions/methods in the core API modules (the ones a
   `pydoc repro` reader lands on) carry docstrings.
4. ``docs/PAPER_MAP.md`` is complete: every ``benchmarks/bench_*.py``
   script is listed there (so a new benchmark cannot land unmapped).

Exits non-zero listing every violation, so it can gate CI.
"""

from __future__ import annotations

import ast
import glob
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

MARKDOWN_FILES = [
    "README.md",
    "docs/API.md",
    "docs/ARCHITECTURE.md",
    "docs/STORAGE.md",
    "docs/SERVER.md",
    "docs/SYNC.md",
    "docs/QUERY.md",
    "docs/LINT.md",
    "docs/PAPER_MAP.md",
    "benchmarks/README.md",
]

#: Modules that must have *complete* public docstring coverage (not just a
#: module docstring): the surfaces a reference reader hits first.
FULL_COVERAGE_MODULES = [
    "src/repro/api/__init__.py",
    "src/repro/api/repository.py",
    "src/repro/api/branch.py",
    "src/repro/api/transaction.py",
    "src/repro/api/merge.py",
    "src/repro/core/interfaces.py",
    "src/repro/core/metrics.py",
    "src/repro/indexes/__init__.py",
    "src/repro/storage/__init__.py",
    "src/repro/storage/store.py",
    "src/repro/storage/file.py",
    "src/repro/storage/segment.py",
    "src/repro/storage/gc.py",
    "src/repro/service/__init__.py",
    "src/repro/service/sharding.py",
    "src/repro/service/batcher.py",
    "src/repro/service/service.py",
    "src/repro/service/engine.py",
    "src/repro/service/process.py",
    "src/repro/query/__init__.py",
    "src/repro/query/definition.py",
    "src/repro/query/feed.py",
    "src/repro/query/view.py",
    "src/repro/server/__init__.py",
    "src/repro/server/server.py",
    "src/repro/server/client.py",
    "src/repro/server/metrics.py",
]

PAPER_MAP = "docs/PAPER_MAP.md"

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def check_markdown_links(errors: list) -> None:
    """Rule 1: relative markdown links resolve to existing paths."""
    for md_path in MARKDOWN_FILES:
        full = os.path.join(REPO_ROOT, md_path)
        if not os.path.exists(full):
            errors.append(f"{md_path}: file is missing")
            continue
        with open(full, encoding="utf-8") as handle:
            text = handle.read()
        for target in _LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            target_path = target.split("#", 1)[0]
            resolved = os.path.normpath(os.path.join(os.path.dirname(full), target_path))
            if not os.path.exists(resolved):
                errors.append(f"{md_path}: broken link -> {target}")


def iter_python_modules():
    """All python files under src/repro, repo-relative."""
    for dirpath, _dirnames, filenames in os.walk(os.path.join(REPO_ROOT, "src", "repro")):
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                yield os.path.relpath(os.path.join(dirpath, filename), REPO_ROOT)


def check_module_docstrings(errors: list) -> None:
    """Rule 2: every library module carries a module docstring."""
    for rel_path in iter_python_modules():
        with open(os.path.join(REPO_ROOT, rel_path), encoding="utf-8") as handle:
            tree = ast.parse(handle.read(), filename=rel_path)
        if ast.get_docstring(tree) is None:
            errors.append(f"{rel_path}: missing module docstring")


def _is_public(name: str) -> bool:
    # Dunders (including __init__) are exempt: the codebase convention is
    # numpydoc-style parameter documentation on the *class* docstring.
    return not name.startswith("_")


def check_api_docstrings(errors: list) -> None:
    """Rule 3: public names in the core API modules are documented."""
    for rel_path in FULL_COVERAGE_MODULES:
        full = os.path.join(REPO_ROOT, rel_path)
        if not os.path.exists(full):
            errors.append(f"{rel_path}: file is missing")
            continue
        with open(full, encoding="utf-8") as handle:
            tree = ast.parse(handle.read(), filename=rel_path)
        for node in ast.walk(tree):
            if not isinstance(node, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _is_public(node.name):
                continue
            if ast.get_docstring(node) is None:
                errors.append(
                    f"{rel_path}:{node.lineno}: public {type(node).__name__.lower()} "
                    f"'{node.name}' has no docstring"
                )


def check_paper_map(errors: list) -> None:
    """Rule 4: every benchmark script appears in docs/PAPER_MAP.md."""
    full = os.path.join(REPO_ROOT, PAPER_MAP)
    if not os.path.exists(full):
        errors.append(f"{PAPER_MAP}: file is missing")
        return
    with open(full, encoding="utf-8") as handle:
        text = handle.read()
    scripts = sorted(glob.glob(os.path.join(REPO_ROOT, "benchmarks", "bench_*.py")))
    for script in scripts:
        name = os.path.basename(script)
        if name not in text:
            errors.append(
                f"{PAPER_MAP}: benchmark {name} is not mapped to a paper "
                "artifact / result file (add a row)")


def main() -> int:
    errors: list = []
    check_markdown_links(errors)
    check_module_docstrings(errors)
    check_api_docstrings(errors)
    check_paper_map(errors)
    if errors:
        print(f"documentation check FAILED ({len(errors)} problem(s)):")
        for error in errors:
            print(f"  - {error}")
        return 1
    print("documentation check passed: links resolve, public APIs documented, "
          "paper map complete")
    return 0


if __name__ == "__main__":
    sys.exit(main())
